"""Wire protocol: framing and message serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tedstore import messages as m


def _loop_reader(data: bytes):
    """recv_exact over an in-memory buffer."""
    state = {"pos": 0}

    def recv(n):
        start = state["pos"]
        if start + n > len(data):
            raise m.ProtocolError("short read")
        state["pos"] = start + n
        return data[start : start + n]

    return recv


class TestFraming:
    def test_roundtrip(self):
        framed = m.frame(m.MSG_OK, b"payload")
        message_type, payload = m.read_frame(_loop_reader(framed))
        assert message_type == m.MSG_OK
        assert payload == b"payload"

    def test_empty_payload(self):
        framed = m.frame(m.MSG_OK, b"")
        message_type, payload = m.read_frame(_loop_reader(framed))
        assert (message_type, payload) == (m.MSG_OK, b"")

    def test_rejects_zero_length(self):
        with pytest.raises(m.ProtocolError):
            m.read_frame(_loop_reader(b"\x00\x00\x00\x00"))

    def test_rejects_oversized_frame(self):
        header = (m.MAX_MESSAGE_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(m.ProtocolError):
            m.read_frame(_loop_reader(header))

    def test_rejects_truncated_body(self):
        # Header promises 10 body bytes; the stream ends after 4.
        framed = (10).to_bytes(4, "big") + b"\x06abc"
        with pytest.raises(m.ProtocolError):
            m.read_frame(_loop_reader(framed))

    def test_busy_frame_roundtrip(self):
        framed = m.frame(m.MSG_BUSY, m.encode_error("server busy"))
        message_type, payload = m.read_frame(_loop_reader(framed))
        assert message_type == m.MSG_BUSY
        assert m.decode_error(payload) == "server busy"

    def test_message_type_codes_are_unique(self):
        codes = [
            value
            for name, value in vars(m).items()
            if name.startswith("MSG_")
        ]
        assert len(codes) == len(set(codes))


class TestKeyGenMessages:
    def test_request_roundtrip(self):
        request = m.KeyGenRequest(hash_vectors=[[1, 2, 3, 4], [5, 6, 7, 8]])
        assert m.KeyGenRequest.decode(request.encode()) == request

    def test_empty_request(self):
        request = m.KeyGenRequest()
        assert m.KeyGenRequest.decode(request.encode()) == request

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=8),
            max_size=20,
        )
    )
    def test_request_roundtrip_property(self, vectors):
        request = m.KeyGenRequest(hash_vectors=vectors)
        assert m.KeyGenRequest.decode(request.encode()) == request

    def test_response_roundtrip(self):
        response = m.KeyGenResponse(seeds=[b"s1", b"s2" * 16], current_t=42)
        assert m.KeyGenResponse.decode(response.encode()) == response

    def test_decode_rejects_trailing_bytes(self):
        payload = m.KeyGenRequest(hash_vectors=[[1]]).encode() + b"extra"
        with pytest.raises(m.ProtocolError):
            m.KeyGenRequest.decode(payload)

    def test_decode_rejects_truncated_blob(self):
        payload = m.KeyGenResponse(seeds=[b"seed"], current_t=1).encode()
        with pytest.raises((m.ProtocolError, ValueError)):
            m.KeyGenResponse.decode(payload[:-3])


class TestChunkMessages:
    def test_put_chunks_roundtrip(self):
        request = m.PutChunks(chunks=[(b"fp1", b"data1"), (b"fp2", b"")])
        assert m.PutChunks.decode(request.encode()) == request

    def test_put_chunks_response_roundtrip(self):
        response = m.PutChunksResponse(stored=10, duplicates=5)
        assert m.PutChunksResponse.decode(response.encode()) == response

    def test_get_chunks_roundtrip(self):
        request = m.GetChunks(fingerprints=[b"a" * 32, b"b" * 32])
        assert m.GetChunks.decode(request.encode()) == request

    def test_chunks_roundtrip(self):
        response = m.Chunks(chunks=[b"x" * 1000, b""])
        assert m.Chunks.decode(response.encode()) == response

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.binary(max_size=32), st.binary(max_size=200)),
            max_size=10,
        )
    )
    def test_put_chunks_property(self, chunks):
        request = m.PutChunks(chunks=chunks)
        assert m.PutChunks.decode(request.encode()) == request


class TestRecipeMessages:
    def test_put_recipes_roundtrip(self):
        request = m.PutRecipes(
            file_name="backups/2026-07-06.tar",
            sealed_file_recipe=b"sealed-fr",
            sealed_key_recipe=b"sealed-kr",
        )
        assert m.PutRecipes.decode(request.encode()) == request

    def test_unicode_file_name(self):
        request = m.PutRecipes(file_name="файл.bin")
        assert m.PutRecipes.decode(request.encode()).file_name == "файл.bin"

    def test_get_recipes_roundtrip(self):
        request = m.GetRecipes(file_name="f")
        assert m.GetRecipes.decode(request.encode()) == request


class TestMiscMessages:
    def test_error_roundtrip(self):
        assert m.decode_error(m.encode_error("boom: not found")) == \
            "boom: not found"

    def test_stats_roundtrip(self):
        pairs = [("requests", 100), ("current_t", 7)]
        assert m.decode_stats(m.encode_stats(pairs)) == pairs

    def test_stats_empty(self):
        assert m.decode_stats(m.encode_stats([])) == []

    def test_stats_floats_roundtrip_exactly(self):
        pairs = [
            ("ted_h_seconds_p95", 0.0012345678901234567),
            ("ted_dedup_ratio", 1.9999999999999998),
            ("tiny", 5e-324),
        ]
        assert m.decode_stats(m.encode_stats(pairs)) == pairs

    def test_stats_mixed_int_and_float_payload(self):
        pairs = [
            ("requests", 100),
            ("ted_h_seconds_p50", 0.25),
            ("current_t", 7),
            ("negative", -3),  # negative ints ride the float encoding
            ("zero", 0),
        ]
        decoded = dict(m.decode_stats(m.encode_stats(pairs)))
        assert decoded["requests"] == 100
        assert isinstance(decoded["requests"], int)
        assert decoded["ted_h_seconds_p50"] == 0.25
        assert decoded["current_t"] == 7
        assert decoded["negative"] == -3.0
        assert decoded["zero"] == 0
        assert isinstance(decoded["zero"], int)

    def test_stats_truncated_payloads_raise_protocol_error(self):
        payload = m.encode_stats(
            [("requests", 100), ("ted_h_seconds_p95", 0.125)]
        )
        for cut in range(1, len(payload)):
            truncated = payload[:cut]
            try:
                m.decode_stats(truncated)
            except m.ProtocolError:
                continue
            # Prefixes that happen to parse must decode to a strict prefix
            # of the pairs, never garbage — but most cuts must raise.
            assert cut < len(payload)

    def test_stats_unknown_value_tag_rejected(self):
        # A single pair whose value tag is neither int (0) nor float (1).
        from repro.utils.varint import encode_uvarint

        payload = (
            encode_uvarint(1)            # one pair
            + encode_uvarint(3) + b"abc"  # name
            + encode_uvarint(9)           # bogus tag
        )
        with pytest.raises(m.ProtocolError):
            m.decode_stats(payload)
