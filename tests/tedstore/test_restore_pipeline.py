"""Unit tests for the pipelined download path (DESIGN.md §11).

Covers the truncation regression (a short ``GetChunks`` reply must raise
instead of silently shortening the restored file), restore-side alias
suppression, fail-fast unwinding, and client reusability after a failed
download.
"""

import threading
import time

import pytest

from repro.tedstore import messages as m
from repro.tedstore.faults import FaultPlan, FaultyProvider, InjectedFault
from repro.tedstore.pipeline import PipelineError
from repro.tedstore.restore_pipeline import PipelinedDownloader

from tests.harness.differential import make_deployment, make_workload

WORKLOAD = make_workload(
    files=1, chunks_per_file=600, distinct_blocks=25, seed=11
)


class _ShortReplyProvider:
    """Truncates every multi-chunk ``GetChunks`` reply once armed.

    Models a buggy or version-skewed provider that answers with fewer
    chunks than requested — the failure the pre-fix client swallowed via
    ``zip``, returning a silently truncated file.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.armed = False

    def get_chunks(self, request: m.GetChunks) -> m.Chunks:
        reply = self._inner.get_chunks(request)
        if self.armed and len(reply.chunks) > 1:
            return m.Chunks(chunks=reply.chunks[:-1])
        return reply

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _deploy_with_short_replies(tmp_path, **kwargs):
    holder = {}

    def wrap(transport):
        holder["wrapper"] = _ShortReplyProvider(transport)
        return holder["wrapper"]

    deployment = make_deployment(
        "bted", tmp_path, provider_wrap=wrap, **kwargs
    )
    return deployment, holder["wrapper"]


class TestTruncationRegression:
    def test_serial_download_rejects_short_reply(self, tmp_path):
        deployment, wrapper = _deploy_with_short_replies(tmp_path)
        name, chunks = WORKLOAD[0]
        deployment.client.upload_chunks(name, chunks)
        wrapper.armed = True
        with pytest.raises(ValueError, match="provider returned"):
            deployment.client.download(name)

    def test_pipelined_download_rejects_short_reply(self, tmp_path):
        deployment, wrapper = _deploy_with_short_replies(
            tmp_path, workers=3
        )
        name, chunks = WORKLOAD[0]
        deployment.client.upload_chunks(name, chunks)
        wrapper.armed = True
        with pytest.raises(PipelineError) as excinfo:
            deployment.client.download(name)
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "provider returned" in str(excinfo.value.__cause__)

    def test_metadedup_recipe_fetch_rejects_short_reply(self, tmp_path):
        """The metadata-chunk fetch goes through the same length check."""
        deployment, wrapper = _deploy_with_short_replies(
            tmp_path, metadata_dedup=True, client_batch_size=50
        )
        # Enough chunks that the recipes span multiple metadata chunks,
        # so the armed wrapper sees a multi-chunk metadata fetch.
        name, chunks = WORKLOAD[0]
        deployment.client.upload_chunks(name, chunks)
        wrapper.armed = True
        with pytest.raises(ValueError, match="provider returned"):
            deployment.client.download(name)


class TestAliasSuppression:
    def test_repeats_fetched_and_decrypted_once(self, tmp_path):
        """On duplicate-heavy data the prefetcher fetches each unique
        (ciphertext, key) pair once and the workers decrypt it once;
        repeats resolve from the memo without changing a byte."""
        deployment = make_deployment("mle", tmp_path, workers=3)
        name, chunks = WORKLOAD[0]
        deployment.client.upload_chunks(name, chunks)

        client = deployment.client
        file_recipe, key_recipe = client._fetch_recipes(name)
        downloader = PipelinedDownloader(client)
        data = downloader.run(
            name, file_recipe.entries, key_recipe.keys
        )
        assert data == b"".join(chunks)
        total = len(file_recipe.entries)
        # MLE: identical plaintext -> identical ciphertext and key, so
        # unique pairs == distinct blocks, far below the chunk count.
        assert downloader.fetched < total
        assert downloader.aliases > 0
        assert downloader.decrypted == downloader.fetched == total - downloader.aliases

    def test_counters_on_unique_data(self, tmp_path):
        """All-unique data has no aliases; every chunk is fetched and
        decrypted exactly once."""
        deployment = make_deployment("bted", tmp_path, workers=2)
        rng_chunks = [bytes([i % 251, i // 251]) * 700 for i in range(90)]
        deployment.client.upload_chunks("uniq", rng_chunks)
        client = deployment.client
        file_recipe, key_recipe = client._fetch_recipes("uniq")
        downloader = PipelinedDownloader(client)
        data = downloader.run(
            "uniq", file_recipe.entries, key_recipe.keys
        )
        assert data == b"".join(rng_chunks)
        assert downloader.aliases == 0
        assert downloader.fetched == downloader.decrypted == len(rng_chunks)


class TestFailureHandling:
    def test_hard_fault_fails_fast_without_deadlock(self, tmp_path):
        deployment = make_deployment("bted", tmp_path)
        name, chunks = WORKLOAD[0]
        deployment.client.upload_chunks(name, chunks)

        # Re-point a pipelined client at the stored data, with every
        # provider call dropped.
        broken = TestFailureHandling._pipelined_twin(
            deployment, workers=3, client_batch_size=100
        )
        broken.provider = FaultyProvider(
            broken.provider, FaultPlan(drop_rate=1.0, seed=9)
        )
        started = time.monotonic()
        with pytest.raises((PipelineError, InjectedFault)) as excinfo:
            broken.download(name)
        assert time.monotonic() - started < 30.0
        for thread in threading.enumerate():
            if thread.name.startswith("ted-pipeline-decrypt"):
                thread.join(timeout=5.0)
        assert not any(
            t.is_alive()
            for t in threading.enumerate()
            if t.name.startswith("ted-pipeline-decrypt")
        )

    def test_failed_download_leaves_client_reusable(self, tmp_path):
        deployment, wrapper = _deploy_with_short_replies(
            tmp_path, workers=3
        )
        name, chunks = WORKLOAD[0]
        deployment.client.upload_chunks(name, chunks)
        wrapper.armed = True
        with pytest.raises(PipelineError):
            deployment.client.download(name)
        wrapper.armed = False  # faults healed; same client object
        assert deployment.client.download(name) == b"".join(chunks)

    def test_empty_file_roundtrip(self, tmp_path):
        deployment = make_deployment("bted", tmp_path, workers=2)
        deployment.client.upload("empty", b"")
        assert deployment.client.download("empty") == b""

    @staticmethod
    def _pipelined_twin(deployment, *, workers, client_batch_size):
        from repro.tedstore.client import TedStoreClient

        base = deployment.client
        return TedStoreClient(
            base.key_manager,
            base.provider,
            master_key=base.master_key,
            profile=base.profile,
            sketch_width=base.sketch_width,
            batch_size=client_batch_size,
            workers=workers,
        )
