"""Quorum key management: determinism across quorums, failover, security."""

import random

import pytest

from repro.crypto import ec
from repro.tedstore.quorum import (
    QuorumClient,
    availability_map,
    deal_quorum,
    simulate_failover,
)


@pytest.fixture(scope="module")
def quorum():
    servers, public = deal_quorum(
        threshold=3, num_servers=5, rng=random.Random(77)
    )
    return servers, public


class TestDeterminism:
    def test_same_quorum_same_key(self, quorum):
        servers, _ = quorum
        client = QuorumClient(3, rng=random.Random(1))
        assert client.derive_key(b"fp", servers[:3]) == client.derive_key(
            b"fp", servers[:3]
        )

    def test_different_quorums_same_key(self, quorum):
        # The dedup-critical property: the key is independent of WHICH
        # replicas answered.
        servers, _ = quorum
        client = QuorumClient(3, rng=random.Random(2))
        key_a = client.derive_key(b"fp", servers[:3])
        key_b = client.derive_key(b"fp", servers[2:])
        key_c = client.derive_key(b"fp", [servers[4], servers[0], servers[2]])
        assert key_a == key_b == key_c

    def test_different_clients_same_key(self, quorum):
        servers, _ = quorum
        a = QuorumClient(3, rng=random.Random(3))
        b = QuorumClient(3, rng=random.Random(4))
        assert a.derive_key(b"fp", servers[:3]) == b.derive_key(
            b"fp", servers[:3]
        )

    def test_distinct_fingerprints_distinct_keys(self, quorum):
        servers, _ = quorum
        client = QuorumClient(3, rng=random.Random(5))
        assert client.derive_key(b"fp-A", servers[:3]) != client.derive_key(
            b"fp-B", servers[:3]
        )

    def test_matches_direct_signature(self, quorum):
        # The combined quorum result equals H(d * H2C(fp)) — check against
        # the public point by reconstructing d from the shares.
        servers, public = quorum
        from repro.crypto.shamir import reconstruct

        d = reconstruct([s.share for s in servers[:3]], ec.N)
        assert ec.scalar_mult(d, ec.GENERATOR) == public
        import hashlib

        expected = hashlib.sha256(
            ec.encode_point(ec.scalar_mult(d, ec.hash_to_curve(b"fp")))
        ).digest()
        client = QuorumClient(3, rng=random.Random(6))
        assert client.derive_key(b"fp", servers[:3]) == expected


class TestFailover:
    def test_tolerates_allowed_failures(self, quorum):
        servers, _ = quorum
        client = QuorumClient(3, rng=random.Random(7))
        healthy = client.derive_key(b"fp", servers)
        degraded = simulate_failover(
            b"fp", servers, threshold=3, down=[2, 4], rng=random.Random(8)
        )
        assert degraded == healthy

    def test_too_many_failures_rejected(self, quorum):
        servers, _ = quorum
        with pytest.raises(ValueError):
            simulate_failover(
                b"fp", servers, threshold=3, down=[1, 2, 3]
            )

    def test_insufficient_quorum_rejected(self, quorum):
        servers, _ = quorum
        client = QuorumClient(3)
        with pytest.raises(ValueError):
            client.derive_key(b"fp", servers[:2])

    def test_duplicate_replicas_rejected(self, quorum):
        servers, _ = quorum
        client = QuorumClient(3)
        with pytest.raises(ValueError):
            client.derive_key(b"fp", [servers[0], servers[0], servers[1]])


class TestSecurity:
    def test_blinding_hides_fingerprint_point(self, quorum):
        # The point each server sees differs per request and differs from
        # the unblinded hash-to-curve point.
        servers, _ = quorum
        seen = []

        class Spy:
            def __init__(self, inner):
                self.inner = inner
                self.server_id = inner.server_id

            def sign_blinded(self, point):
                seen.append(point)
                return self.inner.sign_blinded(point)

        spied = [Spy(s) for s in servers[:3]]
        client = QuorumClient(3, rng=random.Random(9))
        client.derive_key(b"fp", spied)
        client.derive_key(b"fp", spied)
        raw = ec.hash_to_curve(b"fp")
        assert raw not in seen
        assert seen[0] != seen[3]  # fresh blinding per request

    def test_server_rejects_bad_point(self, quorum):
        servers, _ = quorum
        with pytest.raises(ValueError):
            servers[0].sign_blinded(None)
        with pytest.raises(ValueError):
            servers[0].sign_blinded((5, 7))

    def test_batch_api(self, quorum):
        servers, _ = quorum
        client = QuorumClient(3, rng=random.Random(10))
        keys = client.derive_keys([b"a", b"b", b"a"], servers[:3])
        assert keys[0] == keys[2]
        assert keys[0] != keys[1]


class TestAvailabilityMap:
    def test_map(self):
        info = availability_map(num_servers=5, threshold=3)
        assert info["tolerated_failures"] == 2
        assert info["collusion_resistance"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            availability_map(2, 3)
