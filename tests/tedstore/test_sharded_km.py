"""ShardedKeyManager unit behaviour (DESIGN.md §15).

The parity gate (tests/integration/test_shard_parity.py) proves whole-
deployment equivalence; these tests pin the service-level contracts in
isolation: seed-for-seed equality with the single key manager, the
sequenced-stream ordering check, FTED tune propagation to every shard
observer, durable restore from per-shard stores plus the front log,
ring persistence/mismatch handling, and rate-limiter pass-through.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.murmur3 import short_hashes
from repro.tedstore.messages import BatchedKeyGenRequest, KeyGenRequest
from repro.tedstore.ratelimit import KeyGenRateLimiter, RateLimitExceeded
from repro.tedstore.ring import HashRing
from repro.tedstore.sharding import ShardedKeyManager

_WIDTH = 2**12
_ROWS = 4


def _front(mode: str = "fted", batch_size: int = 128) -> TedKeyManager:
    if mode == "mle":
        return TedKeyManager(
            secret=b"unit", t=10**9, probabilistic=False, sketch_width=_WIDTH
        )
    if mode == "bted":
        return TedKeyManager(
            secret=b"unit",
            t=4,
            sketch_width=_WIDTH,
            rng=random.Random(3),
        )
    return TedKeyManager(
        secret=b"unit",
        blowup_factor=1.05,
        batch_size=batch_size,
        sketch_width=_WIDTH,
        rng=random.Random(3),
    )


def _vectors(count: int, distinct: int = 16, seed: int = 5) -> list:
    rng = random.Random(seed)
    blocks = [rng.randbytes(48) for _ in range(distinct)]
    import hashlib

    return [
        short_hashes(
            hashlib.sha256(blocks[rng.randrange(distinct)]).digest(),
            _ROWS,
            _WIDTH,
        )
        for _ in range(count)
    ]


@pytest.mark.parametrize("mode", ["mle", "bted", "fted"])
@pytest.mark.parametrize("shards", [2, 5])
def test_seeds_match_single_km(mode, shards):
    """Identical config + RNG ⇒ identical seeds, request for request."""
    single = _front(mode)
    sharded = ShardedKeyManager(_front(mode), HashRing.build(shards, seed=1))
    for start in range(0, 400, 100):
        batch = _vectors(400)[start : start + 100]
        expected = single.generate_seeds(batch)
        got = sharded.handle_keygen(KeyGenRequest(hash_vectors=batch)).seeds
        assert got == expected
    assert sharded.key_manager.t == single.t
    assert sharded.key_manager.stats.requests == single.stats.requests


def test_fted_tune_propagates_to_all_shards():
    sharded = ShardedKeyManager(
        _front("fted", batch_size=64), HashRing.build(3, seed=1)
    )
    response = sharded.handle_keygen(
        KeyGenRequest(hash_vectors=_vectors(200))
    )
    front = sharded.key_manager
    assert front.stats.batches_tuned >= 1
    assert response.current_t == front.t
    for shard in sharded._shards.values():
        assert shard.key_manager.t == front.t


def test_batched_sequence_regression_rejected():
    sharded = ShardedKeyManager(_front("mle"), HashRing.build(2))
    vectors = _vectors(10)
    sharded.handle_keygen_batched(
        BatchedKeyGenRequest(sequence=2, hash_vectors=vectors), "c1"
    )
    with pytest.raises(ValueError, match="stale keygen batch"):
        sharded.handle_keygen_batched(
            BatchedKeyGenRequest(sequence=1, hash_vectors=vectors), "c1"
        )
    # Same-sequence retry and other clients are fine.
    sharded.handle_keygen_batched(
        BatchedKeyGenRequest(sequence=2, hash_vectors=vectors), "c1"
    )
    sharded.handle_keygen_batched(
        BatchedKeyGenRequest(sequence=1, hash_vectors=vectors), "c2"
    )


def test_rate_limiter_enforced():
    limiter = KeyGenRateLimiter(chunks_per_second=1.0, burst_chunks=5.0)
    sharded = ShardedKeyManager(
        _front("mle"), HashRing.build(2), rate_limiter=limiter
    )
    with pytest.raises(RateLimitExceeded):
        sharded.handle_keygen(
            KeyGenRequest(hash_vectors=_vectors(50)), client_id="greedy"
        )


def test_durable_restore_resumes_stream(tmp_path):
    """Close and reopen: t, requests, and sequence floors all survive."""
    vectors = _vectors(300)
    first = ShardedKeyManager(
        _front("fted", batch_size=64),
        HashRing.build(3, seed=2),
        state_root=tmp_path,
    )
    for index, start in enumerate(range(0, 200, 100)):
        first.handle_keygen_batched(
            BatchedKeyGenRequest(
                sequence=index + 1,
                hash_vectors=vectors[start : start + 100],
            ),
            "client-a",
        )
    saved_t = first.key_manager.t
    saved_requests = first.key_manager.stats.requests
    saved_tunes = first.key_manager.stats.batches_tuned
    first.close()

    # Uninterrupted twin: same first two batches, never restarted.
    twin = ShardedKeyManager(
        _front("fted", batch_size=64), HashRing.build(3, seed=2)
    )
    for start in range(0, 200, 100):
        twin.handle_keygen(
            KeyGenRequest(hash_vectors=vectors[start : start + 100])
        )

    second = ShardedKeyManager(_front("fted", batch_size=64), state_root=tmp_path)
    assert second.key_manager.t == saved_t
    assert second.key_manager.stats.requests == saved_requests
    assert second.key_manager.stats.batches_tuned == saved_tunes
    # The stream's sequence floor survives the restart.
    with pytest.raises(ValueError, match="stale keygen batch"):
        second.handle_keygen_batched(
            BatchedKeyGenRequest(sequence=1, hash_vectors=vectors[:10]),
            "client-a",
        )
    # Continuing the stream reproduces the uninterrupted run's *durable*
    # state: summed sketch counters, t, tune count, request count. (Seed
    # draws are not durable — the selection RNG restarts, exactly as in
    # the single key manager — the fail-safe direction.)
    second.handle_keygen_batched(
        BatchedKeyGenRequest(sequence=3, hash_vectors=vectors[200:300]),
        "client-a",
    )
    twin_resp = twin.handle_keygen(
        KeyGenRequest(hash_vectors=vectors[200:300])
    )

    def summed_counters(service):
        total = None
        for shard in service._shards.values():
            matrix = shard.key_manager.sketch._counters
            total = matrix.copy() if total is None else total + matrix
        return total

    assert (summed_counters(second) == summed_counters(twin)).all()
    assert second.key_manager.t == twin.key_manager.t == twin_resp.current_t
    assert (
        second.key_manager.stats.requests == twin.key_manager.stats.requests
    )
    assert (
        second.key_manager.stats.batches_tuned
        == twin.key_manager.stats.batches_tuned
    )
    second.close()


def test_ring_persisted_and_mismatch_rejected(tmp_path):
    first = ShardedKeyManager(
        _front("mle"), HashRing.build(3, seed=7), state_root=tmp_path
    )
    first.close()
    assert (tmp_path / "ring.json").exists()
    # Reopen without a ring: the persisted one is picked up.
    second = ShardedKeyManager(_front("mle"), state_root=tmp_path)
    assert len(second.ring) == 3 and second.ring.seed == 7
    second.close()
    with pytest.raises(ValueError, match="ring config mismatch"):
        ShardedKeyManager(
            _front("mle"), HashRing.build(4, seed=7), state_root=tmp_path
        )


def test_ring_required_without_state():
    with pytest.raises(ValueError, match="required"):
        ShardedKeyManager(_front("mle"))


def test_stats_expose_shard_count():
    sharded = ShardedKeyManager(_front("bted"), HashRing.build(4))
    sharded.handle_keygen(KeyGenRequest(hash_vectors=_vectors(50)))
    stats = dict(sharded.stats())
    assert stats["shards"] == 4
    assert stats["requests"] == 50
