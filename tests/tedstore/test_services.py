"""Key-manager and provider services."""

import random

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.murmur3 import short_hashes
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import (
    GetChunks,
    GetRecipes,
    KeyGenRequest,
    PutChunks,
    PutRecipes,
)
from repro.tedstore.provider import ProviderService

_W = 2**12


def _vectors(*items):
    return [short_hashes(item, 4, _W) for item in items]


class TestKeyManagerService:
    def test_batch_seed_generation(self):
        service = KeyManagerService(
            TedKeyManager(secret=b"s", t=5, sketch_width=_W)
        )
        response = service.handle_keygen(
            KeyGenRequest(hash_vectors=_vectors(b"a", b"b", b"a"))
        )
        assert len(response.seeds) == 3
        assert response.current_t == 5

    def test_default_configuration(self):
        service = KeyManagerService()
        response = service.handle_keygen(
            KeyGenRequest(hash_vectors=[short_hashes(b"x", 4, 2**21)])
        )
        assert len(response.seeds) == 1

    def test_stats(self):
        service = KeyManagerService(
            TedKeyManager(secret=b"s", t=5, sketch_width=_W)
        )
        service.handle_keygen(KeyGenRequest(hash_vectors=_vectors(b"a")))
        stats = dict(service.stats())
        assert stats["requests"] == 1
        assert stats["current_t"] == 5

    def test_concurrent_access(self):
        import threading

        service = KeyManagerService(
            TedKeyManager(
                secret=b"s", t=5, sketch_width=_W, rng=random.Random(1)
            )
        )

        def worker(prefix):
            for i in range(50):
                service.handle_keygen(
                    KeyGenRequest(
                        hash_vectors=_vectors(b"%s-%d" % (prefix, i))
                    )
                )

        threads = [
            threading.Thread(target=worker, args=(b"t%d" % t,))
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert dict(service.stats())["requests"] == 200


class TestProviderService:
    def test_in_memory_dedup(self):
        provider = ProviderService(in_memory=True)
        response = provider.handle_put_chunks(
            PutChunks(chunks=[(b"fp1", b"d1"), (b"fp1", b"d1"), (b"fp2", b"d2")])
        )
        assert response.stored == 2
        assert response.duplicates == 1

    def test_on_disk_dedup(self, tmp_path):
        provider = ProviderService(directory=str(tmp_path), container_bytes=1024)
        provider.handle_put_chunks(
            PutChunks(chunks=[(b"fp1", b"d1"), (b"fp1", b"d1")])
        )
        stats = dict(provider.stats())
        assert stats["unique_chunks"] == 1
        assert stats["logical_chunks"] == 2

    def test_get_chunks_in_order(self):
        provider = ProviderService(in_memory=True)
        provider.handle_put_chunks(
            PutChunks(chunks=[(b"a", b"1"), (b"b", b"2")])
        )
        response = provider.handle_get_chunks(
            GetChunks(fingerprints=[b"b", b"a"])
        )
        assert response.chunks == [b"2", b"1"]

    def test_get_unknown_chunk(self):
        provider = ProviderService(in_memory=True)
        with pytest.raises(KeyError):
            provider.handle_get_chunks(GetChunks(fingerprints=[b"nope"]))

    def test_recipes_roundtrip(self):
        provider = ProviderService(in_memory=True)
        provider.handle_put_recipes(
            PutRecipes(
                file_name="f",
                sealed_file_recipe=b"fr",
                sealed_key_recipe=b"kr",
            )
        )
        out = provider.handle_get_recipes(GetRecipes(file_name="f"))
        assert (out.sealed_file_recipe, out.sealed_key_recipe) == (b"fr", b"kr")

    def test_unknown_recipe(self):
        provider = ProviderService(in_memory=True)
        with pytest.raises(FileNotFoundError):
            provider.handle_get_recipes(GetRecipes(file_name="missing"))

    def test_requires_directory_or_memory(self):
        with pytest.raises(ValueError):
            ProviderService()

    def test_injected_engine(self, tmp_path):
        from repro.storage.dedup import DedupEngine

        engine = DedupEngine(tmp_path, container_bytes=512)
        provider = ProviderService(engine=engine)
        provider.handle_put_chunks(PutChunks(chunks=[(b"fp", b"data")]))
        assert engine.load(b"fp") == b"data"
