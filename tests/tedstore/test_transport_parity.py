"""In-process vs network transport parity for the keygen batching contract.

Historically the in-process transport forwarded keygen calls with no
ordering discipline while the TCP transport serialized them over one
connection — so pipelined clients behaved differently (and the sketch
accumulated different state) depending on transport. The contract is now
explicit (DESIGN.md §10): one batch in flight per transport, submission
order preserved, sequence regressions rejected, retries of the last
sequence accepted. These tests drive the same call sequences through
``LocalKeyManager`` and ``RemoteKeyManager`` and require identical
observable behaviour — seeds, ``current_t``, sketch state, and error
cases alike.
"""

import random
import threading

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.murmur3 import short_hashes
from repro.tedstore import messages as m
from repro.tedstore.inprocess import LocalKeyManager
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import (
    BatchedKeyGenRequest,
    BatchedKeyGenResponse,
    KeyGenRequest,
)
from repro.tedstore.network import RemoteKeyManager, serve_key_manager

_W = 2**14


def _service():
    return KeyManagerService(
        TedKeyManager(
            secret=b"parity",
            blowup_factor=1.05,
            batch_size=200,
            sketch_width=_W,
            rng=random.Random(11),
        )
    )


def _vectors(count, seed):
    rng = random.Random(seed)
    return [
        short_hashes(rng.randbytes(32), 4, _W) for _ in range(count)
    ]


def _sketch_state(service):
    ted = service.key_manager
    return (
        ted.sketch._counters.tobytes(),
        ted.sketch.total,
        ted.t,
        ted.stats.requests,
    )


@pytest.fixture
def transports():
    """One Local and one Remote transport over twin services."""
    local_service = _service()
    remote_service = _service()
    handle = serve_key_manager(remote_service)
    local = LocalKeyManager(local_service)
    remote = RemoteKeyManager(handle.address)
    yield local, remote, local_service, remote_service
    remote.close()
    handle.stop()


class TestBatchedParity:
    def test_same_stream_same_seeds_and_state(self, transports):
        local, remote, local_service, remote_service = transports
        # Duplicate-heavy batches across several server-side retune
        # boundaries (batch_size=200, 3×150 chunks with repeats).
        batches = [
            _vectors(150, seed) + _vectors(50, 0) for seed in range(3)
        ]
        for sequence, vectors in enumerate(batches):
            request = BatchedKeyGenRequest(
                sequence=sequence, hash_vectors=vectors
            )
            local_reply = local.keygen_batched(request)
            remote_reply = remote.keygen_batched(request)
            assert local_reply.sequence == remote_reply.sequence
            assert local_reply.seeds == remote_reply.seeds
            assert local_reply.current_t == remote_reply.current_t
        assert _sketch_state(local_service) == _sketch_state(
            remote_service
        )

    def test_plain_and_batched_interleave_identically(self, transports):
        local, remote, *_ = transports
        plain = KeyGenRequest(hash_vectors=_vectors(40, 7))
        batched = BatchedKeyGenRequest(
            sequence=0, hash_vectors=_vectors(40, 8)
        )
        assert local.keygen(plain).seeds == remote.keygen(plain).seeds
        assert (
            local.keygen_batched(batched).seeds
            == remote.keygen_batched(batched).seeds
        )

    def test_sequence_regression_rejected_on_both(self, transports):
        local, remote, *_ = transports
        for sequence in (1, 2):
            request = BatchedKeyGenRequest(
                sequence=sequence, hash_vectors=_vectors(5, sequence)
            )
            local.keygen_batched(request)
            remote.keygen_batched(request)
        stale = BatchedKeyGenRequest(
            sequence=1, hash_vectors=_vectors(5, 99)
        )
        with pytest.raises(ValueError, match="stale keygen batch"):
            local.keygen_batched(stale)
        with pytest.raises(RuntimeError, match="stale keygen batch"):
            remote.keygen_batched(stale)

    def test_retry_of_last_sequence_accepted_on_both(self, transports):
        """A retried batch (same sequence) is served, not rejected — the
        fail-safe direction: replays only over-count the sketch."""
        local, remote, local_service, remote_service = transports
        request = BatchedKeyGenRequest(
            sequence=3, hash_vectors=_vectors(10, 1)
        )
        first_local = local.keygen_batched(request)
        retry_local = local.keygen_batched(request)
        first_remote = remote.keygen_batched(request)
        retry_remote = remote.keygen_batched(request)
        assert len(retry_local.seeds) == len(first_local.seeds) == 10
        assert len(retry_remote.seeds) == len(first_remote.seeds) == 10
        # Both sides double-counted identically.
        assert _sketch_state(local_service) == _sketch_state(
            remote_service
        )

    def test_new_stream_resets_at_sequence_zero_on_both(self, transports):
        local, remote, *_ = transports
        for transport in (local, remote):
            transport.keygen_batched(
                BatchedKeyGenRequest(
                    sequence=5, hash_vectors=_vectors(3, 1)
                )
            )
            # A fresh upload starts a new stream at 0 — always accepted.
            reply = transport.keygen_batched(
                BatchedKeyGenRequest(
                    sequence=0, hash_vectors=_vectors(3, 2)
                )
            )
            assert reply.sequence == 0


class TestLocalSerialization:
    def test_local_transport_serializes_concurrent_batches(self):
        """The in-process transport must match one-TCP-connection
        semantics: concurrent callers serialize, every batch lands
        atomically (seed count always matches its own batch)."""
        service = _service()
        transport = LocalKeyManager(service)
        errors = []
        barrier = threading.Barrier(4)

        def caller(worker_id):
            try:
                barrier.wait()
                for i in range(10):
                    request = KeyGenRequest(
                        hash_vectors=_vectors(
                            5 + worker_id, worker_id * 100 + i
                        )
                    )
                    reply = transport.keygen(request)
                    assert len(reply.seeds) == 5 + worker_id
            except BaseException as exc:
                errors.append(exc)

        pool = [
            threading.Thread(target=caller, args=(i,)) for i in range(4)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        assert not errors, errors
        assert service.key_manager.stats.requests == sum(
            (5 + w) * 10 for w in range(4)
        )


class TestRemoteSequenceEcho:
    def test_mispaired_reply_raises_protocol_error(self):
        """A reply carrying the wrong sequence means the stream is
        desynchronized; the client must refuse the seeds."""
        service = _service()
        handle = serve_key_manager(service)
        remote = RemoteKeyManager(handle.address)

        class _MispairingConn:
            def __init__(self, inner):
                self._inner = inner

            def call(self, message_type, payload, **kwargs):
                reply_type, reply = self._inner.call(
                    message_type, payload, **kwargs
                )
                if message_type == m.MSG_KEYGEN_BATCH_REQUEST:
                    response = BatchedKeyGenResponse.decode(reply)
                    response.sequence += 7  # corrupt the pairing
                    reply = response.encode()
                return reply_type, reply

            def __getattr__(self, name):
                return getattr(self._inner, name)

        remote._conn = _MispairingConn(remote._conn)
        try:
            with pytest.raises(m.ProtocolError, match="out of sequence"):
                remote.keygen_batched(
                    BatchedKeyGenRequest(
                        sequence=0, hash_vectors=_vectors(2, 1)
                    )
                )
        finally:
            remote._conn = remote._conn._inner
            remote.close()
            handle.stop()
