"""TCP deployment: framing over real sockets, concurrency, errors."""

import random
import threading

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.tedstore.client import TedStoreClient
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import GetChunks, KeyGenRequest
from repro.tedstore.network import (
    RemoteKeyManager,
    RemoteProvider,
    serve_key_manager,
    serve_provider,
)
from repro.tedstore.provider import ProviderService
from repro.traces.workload import unique_file

_W = 2**14


@pytest.fixture
def stack():
    """A running key-manager + provider pair with client factory."""
    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"net-secret",
            blowup_factor=1.05,
            batch_size=500,
            sketch_width=_W,
            rng=random.Random(8),
        )
    )
    provider = ProviderService(in_memory=True)
    km_handle = serve_key_manager(key_manager)
    prov_handle = serve_provider(provider)
    transports = []

    def make_client(master_key=b"\x03" * 32):
        km = RemoteKeyManager(km_handle.address)
        prov = RemoteProvider(prov_handle.address)
        transports.extend([km, prov])
        return TedStoreClient(
            km,
            prov,
            master_key=master_key,
            profile=SHACTR,
            sketch_width=_W,
            batch_size=200,
        )

    yield make_client
    for transport in transports:
        transport.close()
    km_handle.stop()
    prov_handle.stop()


class TestTcpRoundTrip:
    def test_upload_download(self, stack):
        client = stack()
        data = unique_file(80_000)
        client.upload("net-file", data)
        assert client.download("net-file") == data

    def test_keygen_over_tcp(self, stack):
        client = stack()
        response = client.key_manager.keygen(
            KeyGenRequest(hash_vectors=[[1, 2, 3, 4]])
        )
        assert len(response.seeds) == 1

    def test_stats_over_tcp(self, stack):
        client = stack()
        client.upload("f", unique_file(10_000))
        km_stats = dict(client.key_manager.stats())
        prov_stats = dict(client.provider.stats())
        assert km_stats["requests"] > 0
        assert prov_stats["unique_chunks"] > 0

    def test_wire_counters_ride_the_stats_message(self, stack):
        client = stack()
        client.upload("f", unique_file(10_000))
        prov_stats = dict(client.provider.stats())
        assert prov_stats["client_retries"] == 0  # healthy path
        assert prov_stats["client_calls"] > 0
        assert prov_stats["server_connections"] >= 1
        km_stats = dict(client.key_manager.stats())
        assert km_stats["client_reconnects"] == 0

    def test_remote_error_propagates(self, stack):
        # A missing chunk is a typed MSG_NOT_FOUND reply, raised locally
        # as KeyError (not a RuntimeError server fault).
        client = stack()
        with pytest.raises(KeyError, match="missing"):
            client.provider.get_chunks(GetChunks(fingerprints=[b"missing"]))

    def test_connection_survives_error(self, stack):
        client = stack()
        with pytest.raises(KeyError):
            client.provider.get_chunks(GetChunks(fingerprints=[b"missing"]))
        # Same connection continues to work.
        data = unique_file(10_000)
        client.upload("after-error", data)
        assert client.download("after-error") == data


class TestConcurrency:
    def test_multiple_clients_share_backend(self, stack):
        clients = [stack(master_key=bytes([i + 1]) * 32) for i in range(3)]
        datasets = [unique_file(30_000, client_id=i) for i in range(3)]
        errors = []

        def worker(i):
            try:
                clients[i].upload(f"c{i}", datasets[i])
                assert clients[i].download(f"c{i}") == datasets[i]
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_clients_cannot_read_each_others_files(self, stack):
        alice = stack(master_key=b"\x0a" * 32)
        bob = stack(master_key=b"\x0b" * 32)
        alice.upload("alice-file", unique_file(10_000))
        with pytest.raises(ValueError):
            bob.download("alice-file")
