"""TCP deployment: framing over real sockets, concurrency, errors."""

import random
import threading

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.tedstore.client import TedStoreClient
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import GetChunks, KeyGenRequest
from repro.tedstore.network import (
    RemoteKeyManager,
    RemoteProvider,
    serve_key_manager,
    serve_provider,
)
from repro.tedstore.provider import ProviderService
from repro.traces.workload import unique_file

_W = 2**14


@pytest.fixture
def stack():
    """A running key-manager + provider pair with client factory."""
    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"net-secret",
            blowup_factor=1.05,
            batch_size=500,
            sketch_width=_W,
            rng=random.Random(8),
        )
    )
    provider = ProviderService(in_memory=True)
    km_handle = serve_key_manager(key_manager)
    prov_handle = serve_provider(provider)
    transports = []

    def make_client(master_key=b"\x03" * 32):
        km = RemoteKeyManager(km_handle.address)
        prov = RemoteProvider(prov_handle.address)
        transports.extend([km, prov])
        return TedStoreClient(
            km,
            prov,
            master_key=master_key,
            profile=SHACTR,
            sketch_width=_W,
            batch_size=200,
        )

    yield make_client
    for transport in transports:
        transport.close()
    km_handle.stop()
    prov_handle.stop()


class TestTcpRoundTrip:
    def test_upload_download(self, stack):
        client = stack()
        data = unique_file(80_000)
        client.upload("net-file", data)
        assert client.download("net-file") == data

    def test_keygen_over_tcp(self, stack):
        client = stack()
        response = client.key_manager.keygen(
            KeyGenRequest(hash_vectors=[[1, 2, 3, 4]])
        )
        assert len(response.seeds) == 1

    def test_stats_over_tcp(self, stack):
        client = stack()
        client.upload("f", unique_file(10_000))
        km_stats = dict(client.key_manager.stats())
        prov_stats = dict(client.provider.stats())
        assert km_stats["requests"] > 0
        assert prov_stats["unique_chunks"] > 0

    def test_wire_counters_ride_the_stats_message(self, stack):
        client = stack()
        client.upload("f", unique_file(10_000))
        prov_stats = dict(client.provider.stats())
        assert prov_stats["client_retries"] == 0  # healthy path
        assert prov_stats["client_calls"] > 0
        assert prov_stats["server_connections"] >= 1
        km_stats = dict(client.key_manager.stats())
        assert km_stats["client_reconnects"] == 0

    def test_remote_error_propagates(self, stack):
        # A missing chunk is a typed MSG_NOT_FOUND reply, raised locally
        # as KeyError (not a RuntimeError server fault).
        client = stack()
        with pytest.raises(KeyError, match="missing"):
            client.provider.get_chunks(GetChunks(fingerprints=[b"missing"]))

    def test_connection_survives_error(self, stack):
        client = stack()
        with pytest.raises(KeyError):
            client.provider.get_chunks(GetChunks(fingerprints=[b"missing"]))
        # Same connection continues to work.
        data = unique_file(10_000)
        client.upload("after-error", data)
        assert client.download("after-error") == data


class TestConcurrency:
    def test_multiple_clients_share_backend(self, stack):
        clients = [stack(master_key=bytes([i + 1]) * 32) for i in range(3)]
        datasets = [unique_file(30_000, client_id=i) for i in range(3)]
        errors = []

        def worker(i):
            try:
                clients[i].upload(f"c{i}", datasets[i])
                assert clients[i].download(f"c{i}") == datasets[i]
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_clients_cannot_read_each_others_files(self, stack):
        alice = stack(master_key=b"\x0a" * 32)
        bob = stack(master_key=b"\x0b" * 32)
        alice.upload("alice-file", unique_file(10_000))
        with pytest.raises(ValueError):
            bob.download("alice-file")


# -- heartbeats (DESIGN.md §17) ----------------------------------------------


class TestHeartbeat:
    def test_probe_endpoint_names_role_and_epoch(self, stack):
        from repro.tedstore.network import probe_endpoint

        service = ProviderService(in_memory=True)
        handle = serve_provider(service, shard_id=4, ring_epoch=7)
        try:
            pong = probe_endpoint(handle.address)
            assert pong.role == "provider"
            assert pong.shard == 4  # the failure domain this port serves
            assert pong.epoch == 7
        finally:
            handle.stop()
            service.close()
        km_handle = serve_key_manager(KeyManagerService())
        try:
            km_pong = probe_endpoint(km_handle.address)
            assert km_pong.role == "keymanager"
            assert km_pong.shard == -1  # unsharded: the whole key space
        finally:
            km_handle.stop()

    def test_probe_endpoint_raises_on_dead_port(self):
        import socket as socket_module

        from repro.tedstore.network import probe_endpoint

        with socket_module.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            address = sock.getsockname()
        with pytest.raises(OSError):
            probe_endpoint(address, timeout=0.5)

    def test_ping_rides_the_pooled_connection(self, stack):
        client = stack()
        pong = client.provider.ping()
        assert pong.role == "provider"
        assert client.key_manager.ping().role == "keymanager"

    def test_parse_endpoint(self):
        from repro.tedstore.network import parse_endpoint

        assert parse_endpoint("10.1.2.3:7000") == ("10.1.2.3", 7000)
        assert parse_endpoint(":7000") == ("127.0.0.1", 7000)
        for bad in ("nohost", "h:", "h:notaport"):
            with pytest.raises(ValueError):
                parse_endpoint(bad)


# -- handshake failure must not leak sockets (DESIGN.md §13/§17) --------------


def _crash_mid_hello_listener(port: int, crashes: int):
    """A listener that accepts ``crashes`` connections and severs each
    one mid-HELLO (reads a little, closes without replying)."""
    import socket as socket_module

    listener = socket_module.socket()
    listener.setsockopt(
        socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1
    )
    listener.bind(("127.0.0.1", port))
    listener.listen(crashes)
    done = threading.Event()

    def run():
        for _ in range(crashes):
            try:
                conn, _addr = listener.accept()
            except OSError:
                break
            try:
                conn.settimeout(2.0)
                conn.recv(16)  # the client got as far as sending HELLO
            except OSError:
                pass
            conn.close()
        listener.close()
        done.set()

    threading.Thread(target=run, daemon=True).start()
    return listener, done


class TestHandshakeCrash:
    def test_failed_handshakes_leak_no_sockets(self):
        import os

        from repro.tedstore.messages import Hello
        from repro.tedstore.network import _Connection

        before = len(os.listdir("/proc/self/fd"))
        listener, done = _crash_mid_hello_listener(0, crashes=6)
        address = listener.getsockname()
        for _ in range(6):
            with pytest.raises((ConnectionError, OSError)):
                _Connection(address, hello=Hello(tenant="acme"))
        done.wait(timeout=5.0)  # the crasher closes its listener too
        after = len(os.listdir("/proc/self/fd"))
        assert after == before  # every half-open socket was closed

    def test_reconnect_after_mid_hello_crash_rebinds_tenant(self, tmp_path):
        """Kill the server mid-HELLO on reconnect; the next attempt must
        re-handshake so the tenant-scoped op still lands in the right
        namespace (the leaked-socket bug skipped the rebind)."""
        from repro.tedstore.messages import PutChunks
        from repro.tedstore.retry import RetryPolicy

        service = ProviderService(in_memory=True)
        handle = serve_provider(service)
        port = handle.address[1]
        provider = RemoteProvider(
            handle.address,
            tenant="acme",
            retry_policy=RetryPolicy(
                max_attempts=10, base_delay=0.05, max_delay=0.2, jitter=0.0
            ),
        )
        try:
            provider.put_chunks(PutChunks(chunks=[(b"fp1", b"one")]))
            handle.stop()  # the server dies under an idle client

            # Next on this port: a crasher that severs the reconnect's
            # HELLO, then a healthy server again.
            _listener, crash_done = _crash_mid_hello_listener(
                port, crashes=1
            )

            def revive():
                crash_done.wait(timeout=5.0)
                _revived.append(serve_provider(service, port=port))

            _revived = []
            reviver = threading.Thread(target=revive, daemon=True)
            reviver.start()

            provider.put_chunks(PutChunks(chunks=[(b"fp2", b"two")]))
            reply = provider.get_chunks(GetChunks(fingerprints=[b"fp1", b"fp2"]))
            assert reply.chunks == [b"one", b"two"]  # same tenant namespace
            assert provider.wire_stats()["client_reconnects"] >= 1
        finally:
            provider.close()
            for revived in _revived:
                revived.stop()
            service.close()
