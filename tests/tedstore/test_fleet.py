"""Fleet routing: per-shard breakers, fail-fast degradation, no partial state."""

import pytest

from repro.storage.dedup import RingEpochRegressionError
from repro.tedstore import messages as m
from repro.tedstore.fleet import (
    MultiShardProvider,
    RemoteKmShardPool,
    build_routes,
)
from repro.tedstore.health import OPEN, ShardUnavailableError
from repro.tedstore.ring import HashRing


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class FakeShardTransport:
    """In-memory provider shard recording every call it receives."""

    def __init__(self) -> None:
        self.chunks = {}
        self.recipes = {}
        self.calls = []
        self.fail = False
        self.closed = False

    def _gate(self, op):
        if self.fail:
            raise ConnectionError(f"shard down during {op}")
        self.calls.append(op)

    def put_chunks(self, request):
        self._gate("put_chunks")
        stored = duplicates = 0
        for fingerprint, data in request.chunks:
            if fingerprint in self.chunks:
                duplicates += 1
            else:
                self.chunks[fingerprint] = data
                stored += 1
        return m.PutChunksResponse(stored=stored, duplicates=duplicates)

    def get_chunks(self, request):
        self._gate("get_chunks")
        return m.Chunks(
            chunks=[self.chunks[fp] for fp in request.fingerprints]
        )

    def put_recipes(self, request):
        self._gate("put_recipes")
        self.recipes[request.file_name] = request

    def get_recipes(self, request):
        self._gate("get_recipes")
        return self.recipes[request.file_name]

    def stats(self):
        self._gate("stats")
        return [("unique_chunks", len(self.chunks))]

    def close(self):
        self.closed = True


def _fleet(shards=3, **kwargs):
    ring = HashRing.build(shards).with_endpoints(
        {k: f"127.0.0.1:{7000 + k}" for k in range(shards)}
    )
    fakes = {}

    def factory(address):
        # Persistent per shard: a route rebuilds its transport after a
        # wire failure, which models reconnecting to the same process.
        return fakes.setdefault(address[1] - 7000, FakeShardTransport())

    defaults = dict(
        transport_factory=factory,
        breaker_failures=2,
        clock=FakeClock(),
    )
    defaults.update(kwargs)
    provider = MultiShardProvider(ring, **defaults)
    # Touch every route once so each fake exists for the tests to poke.
    provider.put_chunks(
        m.PutChunks(
            chunks=[
                (b"warm-%d" % i, b"x") for i in range(shards * 8)
            ]
        )
    )
    assert set(fakes) == set(range(shards))
    return provider, fakes


def _batch(count, prefix=b"fp"):
    return m.PutChunks(
        chunks=[
            (prefix + str(i).encode(), b"data-" + str(i).encode())
            for i in range(count)
        ]
    )


class TestHealthyRouting:
    def test_round_trip_across_shards(self):
        provider, fakes = _fleet()
        request = _batch(40)
        response = provider.put_chunks(request)
        assert response.stored == 40
        fingerprints = [fp for fp, _ in request.chunks]
        reply = provider.get_chunks(m.GetChunks(fingerprints=fingerprints))
        assert reply.chunks == [data for _, data in request.chunks]
        # Every shard took part and holds only its ring-owned slice.
        per_shard = [len(f.chunks) for f in fakes.values()]
        assert sum(per_shard) == 40 + 24  # batch + warm-up chunks
        assert all(count > 0 for count in per_shard)

    def test_recipes_live_in_one_failure_domain(self):
        provider, fakes = _fleet()
        request = m.PutRecipes(
            file_name="f1",
            sealed_file_recipe=b"sealed-fr",
            sealed_key_recipe=b"sealed-kr",
        )
        provider.put_recipes(request)
        holders = [s for s, f in fakes.items() if "f1" in f.recipes]
        assert len(holders) == 1
        assert provider.get_recipes(
            m.GetRecipes(file_name="f1")
        ).sealed_file_recipe == b"sealed-fr"

    def test_stats_sum_reachable_shards(self):
        provider, fakes = _fleet(shards=2)
        stats = dict(provider.stats())
        assert stats["fleet_shards"] == 2
        assert stats["fleet_shards_reachable"] == 2
        assert stats["unique_chunks"] == sum(
            len(f.chunks) for f in fakes.values()
        )


class TestDegradedMode:
    def test_midflight_failure_surfaces_typed_error(self):
        provider, fakes = _fleet()
        fakes[0].fail = True
        with pytest.raises(ShardUnavailableError) as excinfo:
            provider.put_chunks(_batch(40))
        assert excinfo.value.side == "provider"
        assert excinfo.value.shard == 0

    def test_open_breaker_fails_fast_without_partial_state(self):
        """Differential gate: a batch rejected at admission must leave
        byte-identical shard state to never having been sent at all."""
        provider, fakes = _fleet()
        fakes[0].fail = True
        for _ in range(2):  # trip shard 0's breaker (threshold 2)
            with pytest.raises(ShardUnavailableError):
                provider.put_chunks(_batch(40))
        assert provider.shard_health()[0] == OPEN

        snapshots = {s: dict(f.chunks) for s, f in fakes.items()}
        call_counts = {s: len(f.calls) for s, f in fakes.items()}
        with pytest.raises(ShardUnavailableError):
            provider.put_chunks(_batch(40, prefix=b"new"))
        # Healthy shards saw no sub-batch: admission runs for every
        # target shard before any bytes move.
        assert {s: dict(f.chunks) for s, f in fakes.items()} == snapshots
        assert {s: len(f.calls) for s, f in fakes.items()} == call_counts

    def test_healthy_shard_ops_proceed_during_an_outage(self):
        provider, fakes = _fleet()
        fakes[1].fail = True
        for _ in range(2):
            with pytest.raises(ShardUnavailableError):
                provider.put_chunks(_batch(40))
        # A batch whose chunks all land on healthy shards still works.
        healthy_only = m.PutChunks(
            chunks=[
                (fp, data)
                for fp, data in _batch(60, prefix=b"h").chunks
                if provider.ring.shard_for_key(fp) != 1
            ]
        )
        response = provider.put_chunks(healthy_only)
        assert response.stored == len(healthy_only.chunks)

    def test_recovered_shard_rejoins_after_the_reset_timeout(self):
        clock = FakeClock()
        provider, fakes = _fleet(clock=clock, breaker_reset=5.0)
        fakes[0].fail = True
        for _ in range(2):
            with pytest.raises(ShardUnavailableError):
                provider.put_chunks(_batch(40))
        fakes[0].fail = False  # the shard restarts, state recovered
        clock.now = 5.0  # reset timeout elapses -> half-open trial
        response = provider.put_chunks(_batch(40))
        assert response.duplicates + response.stored == 40
        assert provider.shard_health()[0] == "closed"

    def test_stats_skip_unreachable_shards(self):
        provider, fakes = _fleet(shards=2)
        fakes[0].fail = True
        stats = dict(provider.stats())
        assert stats["fleet_shards_reachable"] == 1
        assert stats["unique_chunks"] == len(fakes[1].chunks)


class TestEpochGuard:
    def test_lower_peer_epoch_is_a_typed_error(self):
        ring = HashRing(
            [0, 1], epoch=3, endpoints={0: "h:1", 1: "h:2"}
        )
        provider = MultiShardProvider(
            ring, transport_factory=lambda address: FakeShardTransport()
        )
        with pytest.raises(RingEpochRegressionError) as excinfo:
            provider.check_peer_epoch(m.Pong(role="provider", epoch=1))
        assert (excinfo.value.reported, excinfo.value.current) == (1, 3)
        provider.check_peer_epoch(m.Pong(role="provider", epoch=3))
        provider.check_peer_epoch(m.Pong(role="provider", epoch=9))


class TestRouteBuilding:
    def test_missing_endpoints_rejected(self):
        ring = HashRing.build(3).with_endpoints({0: "h:1"})
        with pytest.raises(ValueError, match="no endpoint"):
            build_routes("provider", ring, lambda address: None)

    def test_close_stops_routes_and_transports(self):
        provider, fakes = _fleet()
        provider.close()
        assert all(f.closed for f in fakes.values())


class FakeObserver:
    def __init__(self, estimates=None, fail=False):
        self.estimates = estimates
        self.fail = fail
        self.seen = []

    def observe(self, request):
        if self.fail:
            raise ConnectionError("observer down")
        self.seen.append((request.client_id, request.sequence))
        estimates = (
            self.estimates
            if self.estimates is not None
            else [1] * len(request.hash_vectors)
        )
        return m.ShardObserveResponse(estimates=estimates)

    def close(self):
        pass


class TestKmShardPool:
    def _pool(self, observers):
        ring = HashRing.build(len(observers)).with_endpoints(
            {k: f"127.0.0.1:{7100 + k}" for k in range(len(observers))}
        )
        return RemoteKmShardPool(
            ring,
            transport_factory=lambda address: observers[address[1] - 7100],
            breaker_failures=1,
            clock=FakeClock(),
        )

    def test_observe_returns_estimates(self):
        observers = {0: FakeObserver(), 1: FakeObserver()}
        pool = self._pool(observers)
        estimates = pool.observe(1, "client-a", 7, [[1, 2], [3, 4]])
        assert estimates == [1, 1]
        assert observers[1].seen == [("client-a", 7)]

    def test_dead_observer_is_a_typed_km_error(self):
        pool = self._pool({0: FakeObserver(fail=True)})
        with pytest.raises(ShardUnavailableError) as excinfo:
            pool.observe(0, "client-a", 0, [[1, 2]])
        assert excinfo.value.side == "km"
        assert pool.shard_health()[0] == OPEN  # threshold 1: fails fast now

    def test_estimate_count_mismatch_is_a_protocol_error(self):
        pool = self._pool({0: FakeObserver(estimates=[5])})
        with pytest.raises(m.ProtocolError, match="estimates"):
            pool.observe(0, "client-a", 0, [[1, 2], [3, 4]])
