"""Seeded consistent-hash ring properties (DESIGN.md §15).

The ring is the correctness foundation of sharded TED, so its contract
is property-tested directly: placement must be a pure function of the
``(seed, vnodes, shards)`` config (cross-process determinism), adding a
shard may only move keys *onto* the new shard (monotonicity — what
bounds ``repro reshard`` migrations at ~1/N of the data), balance at
64 vnodes must stay within a 1.25 max/mean bound, and the serialized
``ring.json`` form must round-trip exactly.
"""

from __future__ import annotations

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.tedstore.ring import (
    DEFAULT_VNODES,
    HashRing,
    load_ring,
    store_ring,
)


def _keys(count: int, prefix: bytes = b"fp") -> list:
    return [prefix + str(i).encode() for i in range(count)]


# -- determinism --------------------------------------------------------------


def test_same_config_places_identically():
    a = HashRing.build(5, seed=7)
    b = HashRing(range(5), vnodes=DEFAULT_VNODES, seed=7)
    for key in _keys(500):
        assert a.shard_for_key(key) == b.shard_for_key(key)


def test_placement_is_deterministic_across_processes():
    """PYTHONHASHSEED must not affect placement (sha256, not hash())."""
    code = (
        "from repro.tedstore.ring import HashRing\n"
        "ring = HashRing.build(4, seed=3)\n"
        "print([ring.shard_for_key(b'fp%d' % i) for i in range(64)])\n"
    )
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    runs = set()
    for hashseed in ("0", "12345"):
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": src_dir, "PYTHONHASHSEED": hashseed},
        )
        runs.add(out.stdout.strip())
    assert len(runs) == 1
    local = HashRing.build(4, seed=3)
    assert runs.pop() == str(
        [local.shard_for_key(b"fp%d" % i) for i in range(64)]
    )


def test_different_seeds_place_differently():
    a, b = HashRing.build(4, seed=0), HashRing.build(4, seed=1)
    placements_a = [a.shard_for_key(k) for k in _keys(200)]
    placements_b = [b.shard_for_key(k) for k in _keys(200)]
    assert placements_a != placements_b


def test_hash_vector_routing_is_deterministic():
    ring = HashRing.build(3, seed=9)
    vector = [17, 4242, 99999, 3]
    assert ring.shard_for_hashes(vector) == ring.shard_for_hashes(
        list(vector)
    )
    assert ring.shard_for_hashes(vector) in ring.shards


# -- monotonicity -------------------------------------------------------------


@pytest.mark.parametrize("base", [2, 3, 5])
def test_adding_a_shard_moves_keys_only_onto_it(base):
    old = HashRing.build(base, seed=13)
    new = old.add_shard()
    new_id = max(new.shards)
    moved = 0
    for key in _keys(3000):
        before, after = old.shard_for_key(key), new.shard_for_key(key)
        if before != after:
            assert after == new_id, (
                f"key moved {before}->{after}, not onto new shard {new_id}"
            )
            moved += 1
    # The new shard takes roughly its fair 1/(base+1) slice.
    assert 0 < moved < 3000


def test_removing_a_shard_only_scatters_its_keys():
    old = HashRing.build(4, seed=13)
    new = old.remove_shard(2)
    for key in _keys(2000):
        before, after = old.shard_for_key(key), new.shard_for_key(key)
        if before != 2:
            assert after == before
        else:
            assert after != 2
    assert new.epoch == old.epoch + 1


def test_membership_changes_bump_epoch_and_copy():
    ring = HashRing.build(2, seed=1)
    grown = ring.add_shard()
    assert ring.epoch == 0 and grown.epoch == 1
    assert len(ring) == 2 and len(grown) == 3  # original untouched
    with pytest.raises(ValueError):
        ring.add_shard(0)
    with pytest.raises(ValueError):
        ring.remove_shard(9)
    with pytest.raises(ValueError):
        HashRing.build(1).remove_shard(0)


# -- balance ------------------------------------------------------------------


@pytest.mark.parametrize("shards", [2, 3, 5, 8])
def test_balance_within_bound_at_10k_keys(shards):
    """max/mean <= 1.25 at 10k keys with the default 64 vnodes."""
    ring = HashRing.build(shards, seed=0)
    counts = Counter(ring.shard_for_key(k) for k in _keys(10_000))
    assert set(counts) == set(ring.shards), "a shard received no keys"
    mean = 10_000 / shards
    imbalance = max(counts.values()) / mean
    assert imbalance <= 1.25, f"imbalance {imbalance:.3f} > 1.25 bound"


# -- config round-trip --------------------------------------------------------


def test_json_round_trip_preserves_placement():
    ring = HashRing((0, 1, 3), vnodes=32, seed=11, epoch=4)
    clone = HashRing.from_json(ring.to_json())
    assert clone == ring
    assert clone.to_dict() == ring.to_dict()
    for key in _keys(300):
        assert clone.shard_for_key(key) == ring.shard_for_key(key)


def test_store_and_load_ring(tmp_path):
    ring = HashRing.build(3, seed=5).add_shard()
    path = tmp_path / "ring.json"
    store_ring(path, ring)
    loaded = load_ring(path)
    assert loaded == ring
    assert loaded.epoch == 1
    # Plain JSON on disk — operators can read it.
    data = json.loads(path.read_text())
    assert data["shards"] == [0, 1, 2, 3]


def test_unsupported_version_rejected():
    with pytest.raises(ValueError, match="version"):
        HashRing.from_dict(
            {"version": 99, "seed": 0, "vnodes": 64, "epoch": 0, "shards": [0]}
        )


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing([0, 0])
    with pytest.raises(ValueError):
        HashRing([0], vnodes=0)
    with pytest.raises(ValueError):
        HashRing.build(0)


# -- per-shard endpoints (multi-process deployments, DESIGN.md §17) -----------


def test_endpoints_round_trip_through_json():
    ring = HashRing.build(3).with_endpoints(
        {0: "10.0.0.1:7000", 1: "10.0.0.2:7000", 2: "10.0.0.3:7000"}
    )
    loaded = HashRing.from_json(ring.to_json())
    assert loaded.endpoints == ring.endpoints
    assert loaded.endpoint_for(1) == "10.0.0.2:7000"
    assert loaded.endpoint_for(9) is None


def test_endpointless_ring_serializes_byte_identically():
    """N=1-style in-process rings keep the PR 8 on-disk format."""
    ring = HashRing.build(3)
    assert "endpoints" not in json.loads(ring.to_json())
    with_eps = ring.with_endpoints({0: "h:1", 1: "h:2", 2: "h:3"})
    stripped = with_eps.with_endpoints({})
    assert stripped.to_json() == ring.to_json()


def test_equality_is_placement_only():
    """Endpoints say where shards live, never what they own."""
    bare = HashRing.build(3)
    mapped = bare.with_endpoints({0: "a:1", 1: "b:2", 2: "c:3"})
    assert bare == mapped
    assert mapped == HashRing.from_json(bare.to_json())


def test_with_endpoints_preserves_epoch_and_placement():
    ring = HashRing.build(3).add_shard()  # epoch 1
    mapped = ring.with_endpoints({s: f"h:{s}" for s in ring.shards})
    assert mapped.epoch == ring.epoch
    keys = _keys(200)
    assert [mapped.shard_for_key(k) for k in keys] == [
        ring.shard_for_key(k) for k in keys
    ]


def test_endpoints_for_unknown_shards_rejected():
    with pytest.raises(ValueError, match="not in the ring"):
        HashRing([0, 1], endpoints={5: "h:9"})


def test_membership_changes_carry_endpoints():
    ring = HashRing.build(2).with_endpoints({0: "h:1", 1: "h:2"})
    grown = ring.add_shard()
    # The new shard has no endpoint yet (the operator publishes one
    # when its process starts); the existing maps survive.
    assert grown.endpoint_for(0) == "h:1"
    assert grown.endpoint_for(2) is None
    shrunk = grown.remove_shard(1)
    assert 1 not in shrunk.endpoints
    assert shrunk.endpoint_for(0) == "h:1"


def test_store_and_load_ring_with_endpoints(tmp_path):
    path = tmp_path / "ring.json"
    ring = HashRing.build(2).with_endpoints(
        {0: "127.0.0.1:7100", 1: "127.0.0.1:7101"}
    )
    store_ring(path, ring)
    loaded = load_ring(path)
    assert loaded == ring
    assert loaded.endpoints == ring.endpoints
