"""Trace file formats: binary and text roundtrips, error handling."""

import pytest

from repro.traces.format import (
    read_dataset,
    read_snapshot,
    read_snapshot_text,
    write_dataset,
    write_snapshot,
    write_snapshot_text,
)
from repro.traces.model import Dataset, Snapshot


def _snapshot(fp_bytes=6, n=50):
    s = Snapshot(snapshot_id="fsl/user0/snap0")
    for i in range(n):
        s.add(i.to_bytes(fp_bytes, "big"), 4096 + i)
    return s


class TestBinaryFormat:
    def test_roundtrip(self, tmp_path):
        snapshot = _snapshot()
        path = tmp_path / "s.trc"
        write_snapshot(path, snapshot)
        restored = read_snapshot(path)
        assert restored.snapshot_id == snapshot.snapshot_id
        assert restored.records == snapshot.records

    def test_roundtrip_40bit_fingerprints(self, tmp_path):
        snapshot = _snapshot(fp_bytes=5)
        path = tmp_path / "s.trc"
        write_snapshot(path, snapshot)
        assert read_snapshot(path).records == snapshot.records

    def test_empty_snapshot(self, tmp_path):
        path = tmp_path / "e.trc"
        write_snapshot(path, Snapshot(snapshot_id="empty"))
        assert read_snapshot(path).records == []

    def test_rejects_mixed_fingerprint_lengths(self, tmp_path):
        snapshot = Snapshot(snapshot_id="bad")
        snapshot.add(b"\x01" * 5, 10)
        snapshot.add(b"\x01" * 6, 10)
        with pytest.raises(ValueError):
            write_snapshot(tmp_path / "bad.trc", snapshot)

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_bytes(b"NOTATRACE-FILE")
        with pytest.raises(ValueError):
            read_snapshot(path)

    def test_rejects_truncation(self, tmp_path):
        path = tmp_path / "s.trc"
        write_snapshot(path, _snapshot())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(ValueError):
            read_snapshot(path)


class TestDatasetIO:
    def test_roundtrip(self, tmp_path):
        dataset = Dataset(
            name="mini", snapshots=[_snapshot(), _snapshot(), _snapshot()]
        )
        paths = write_dataset(tmp_path, dataset)
        assert len(paths) == 3
        restored = read_dataset(tmp_path, "mini")
        assert len(restored) == 3
        for a, b in zip(restored, dataset):
            assert a.records == b.records

    def test_missing_dataset(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_dataset(tmp_path, "nope")


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        snapshot = _snapshot(n=10)
        path = tmp_path / "s.txt"
        write_snapshot_text(path, snapshot)
        restored = read_snapshot_text(path)
        assert restored.snapshot_id == snapshot.snapshot_id
        assert restored.records == snapshot.records

    def test_ignores_blank_and_comment_lines(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("# snapshot: x\n\n# a comment\n0102,100\n")
        restored = read_snapshot_text(path)
        assert restored.records == [(b"\x01\x02", 100)]
