"""Snapshot/dataset accounting and chunk materialization."""

import pytest

from repro.traces.model import Dataset, Snapshot, materialize_chunk


def _snapshot():
    s = Snapshot(snapshot_id="s0")
    s.add(b"\x01" * 6, 100)
    s.add(b"\x02" * 6, 200)
    s.add(b"\x01" * 6, 100)  # duplicate
    return s


class TestSnapshot:
    def test_total_bytes(self):
        assert _snapshot().total_bytes == 400

    def test_unique_chunks(self):
        assert _snapshot().unique_chunks == 2

    def test_unique_bytes(self):
        assert _snapshot().unique_bytes == 300

    def test_dedup_ratio(self):
        assert _snapshot().dedup_ratio == pytest.approx(400 / 300)

    def test_frequencies(self):
        assert sorted(_snapshot().frequencies()) == [1, 2]

    def test_len_and_iter(self):
        s = _snapshot()
        assert len(s) == 3
        assert list(s) == s.records

    def test_add_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Snapshot(snapshot_id="x").add(b"fp", 0)

    def test_empty_snapshot(self):
        s = Snapshot(snapshot_id="e")
        assert s.total_bytes == 0
        assert s.dedup_ratio == 1.0


class TestDataset:
    def test_aggregation(self):
        ds = Dataset(name="d", snapshots=[_snapshot(), _snapshot()])
        assert len(ds) == 2
        assert ds.total_bytes == 800
        assert ds.per_snapshot_dedup_bytes == 600

    def test_iter(self):
        ds = Dataset(name="d", snapshots=[_snapshot()])
        assert list(ds) == ds.snapshots


class TestMaterializeChunk:
    def test_size_and_determinism(self):
        chunk = materialize_chunk(b"\xab\xcd", 10)
        assert len(chunk) == 10
        assert chunk == materialize_chunk(b"\xab\xcd", 10)

    def test_repeats_fingerprint(self):
        assert materialize_chunk(b"ab", 5) == b"ababa"

    def test_distinct_fingerprints_distinct_chunks(self):
        assert materialize_chunk(b"a" * 6, 64) != materialize_chunk(
            b"b" * 6, 64
        )

    def test_size_smaller_than_fingerprint(self):
        assert materialize_chunk(b"abcdef", 3) == b"abc"

    def test_validation(self):
        with pytest.raises(ValueError):
            materialize_chunk(b"fp", 0)
        with pytest.raises(ValueError):
            materialize_chunk(b"", 10)
