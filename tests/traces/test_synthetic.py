"""Synthetic trace generator: determinism and statistical targets."""

import pytest

from repro.traces.synthetic import (
    SyntheticTraceGenerator,
    TraceConfig,
    generate_fsl_like,
    generate_ms_like,
)


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        a = generate_fsl_like(users=1, snapshots_per_user=2, scale=0.05, seed=9)
        b = generate_fsl_like(users=1, snapshots_per_user=2, scale=0.05, seed=9)
        for sa, sb in zip(a, b):
            assert sa.records == sb.records

    def test_different_seed_differs(self):
        a = generate_fsl_like(users=1, snapshots_per_user=1, scale=0.05, seed=1)
        b = generate_fsl_like(users=1, snapshots_per_user=1, scale=0.05, seed=2)
        assert a.snapshots[0].records != b.snapshots[0].records

    def test_users_have_disjoint_chunks(self):
        ds = generate_fsl_like(users=2, snapshots_per_user=1, scale=0.05)
        fps0 = {fp for fp, _ in ds.snapshots[0].records}
        fps1 = {fp for fp, _ in ds.snapshots[1].records}
        assert not fps0 & fps1


class TestStatisticalTargets:
    def test_fsl_fingerprint_width(self, fsl_small):
        for snapshot in fsl_small:
            assert all(len(fp) == 6 for fp, _ in snapshot.records)

    def test_ms_fingerprint_width(self, ms_small):
        for snapshot in ms_small:
            assert all(len(fp) == 5 for fp, _ in snapshot.records)

    def test_fsl_has_intra_snapshot_duplicates(self, fsl_small):
        # §5.1: FSL deduplicates roughly 2x per snapshot.
        ratios = [s.dedup_ratio for s in fsl_small]
        assert max(ratios) > 1.3

    def test_ms_duplication_heavier_on_average(self):
        fsl = generate_fsl_like(users=4, snapshots_per_user=1, scale=0.3, seed=1)
        ms = generate_ms_like(machines=4, scale=0.3, seed=1)
        fsl_mean = sum(s.dedup_ratio for s in fsl) / len(fsl)
        ms_mean = sum(s.dedup_ratio for s in ms) / len(ms)
        assert ms_mean > fsl_mean

    def test_fsl_sizes_vary_across_users(self):
        ds = generate_fsl_like(users=6, snapshots_per_user=1, scale=0.1, seed=4)
        sizes = [s.total_bytes for s in ds]
        assert max(sizes) / min(sizes) > 2  # §5.1: sizes vary significantly

    def test_chunk_sizes_within_bounds(self, fsl_small):
        for fp, size in fsl_small.snapshots[0].records:
            assert 4096 <= size < 16384

    def test_duplicate_fingerprints_have_consistent_sizes(self, fsl_small):
        sizes = {}
        for fp, size in fsl_small.snapshots[0].records:
            assert sizes.setdefault(fp, size) == size


class TestEvolution:
    def test_consecutive_snapshots_share_content(self, snapshot_series):
        first = {fp for fp, _ in snapshot_series[0].records}
        second = {fp for fp, _ in snapshot_series[1].records}
        overlap = len(first & second) / len(first)
        assert overlap > 0.5  # backups mostly repeat

    def test_snapshots_also_change(self, snapshot_series):
        first = {fp for fp, _ in snapshot_series[0].records}
        last = {fp for fp, _ in snapshot_series[-1].records}
        assert last - first  # new content appears

    def test_series_grows(self, snapshot_series):
        assert len(snapshot_series[-1]) > 0
        assert len(snapshot_series) == 5


class TestConfig:
    def test_rejects_bad_fingerprint_bits(self):
        with pytest.raises(ValueError):
            TraceConfig(name="x", fingerprint_bits=44)

    def test_rejects_bad_chunk_bounds(self):
        with pytest.raises(ValueError):
            TraceConfig(name="x", min_chunk=0)
        with pytest.raises(ValueError):
            TraceConfig(name="x", min_chunk=10, max_chunk=5)

    def test_fixed_chunk_size(self):
        config = TraceConfig(name="x", min_chunk=8192, max_chunk=8192)
        gen = SyntheticTraceGenerator(config, "u", 1)
        snapshot = gen.snapshot("s")
        assert all(size == 8192 for _, size in snapshot.records)
