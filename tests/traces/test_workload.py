"""Unique-data workload generators."""

import pytest

from repro.traces.model import Snapshot
from repro.traces.workload import (
    snapshot_to_chunks,
    unique_bytes,
    unique_chunk_stream,
    unique_file,
)


class TestUniqueBytes:
    def test_length(self):
        for n in (0, 1, 31, 32, 100):
            assert len(unique_bytes(n)) == n

    def test_deterministic(self):
        assert unique_bytes(100, seed=5) == unique_bytes(100, seed=5)

    def test_seed_matters(self):
        assert unique_bytes(100, seed=1) != unique_bytes(100, seed=2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            unique_bytes(-1)


class TestUniqueFile:
    def test_clients_get_disjoint_content(self):
        assert unique_file(1000, client_id=0) != unique_file(1000, client_id=1)

    def test_incompressible_looking(self):
        # A crude entropy check: no byte value dominates.
        data = unique_file(10_000)
        from collections import Counter

        top = Counter(data).most_common(1)[0][1]
        assert top < len(data) * 0.02


class TestUniqueChunkStream:
    def test_count_and_size(self):
        chunks = list(unique_chunk_stream(10, chunk_size=256))
        assert len(chunks) == 10
        assert all(len(c) == 256 for c in chunks)

    def test_all_distinct(self):
        chunks = list(unique_chunk_stream(100, chunk_size=64))
        assert len(set(chunks)) == 100


class TestSnapshotToChunks:
    def test_materialization(self):
        snapshot = Snapshot(snapshot_id="s")
        snapshot.add(b"\x01" * 6, 100)
        snapshot.add(b"\x02" * 6, 50)
        pairs = list(snapshot_to_chunks(snapshot))
        assert len(pairs) == 2
        assert pairs[0][0] == b"\x01" * 6
        assert len(pairs[0][1]) == 100
        assert len(pairs[1][1]) == 50

    def test_duplicate_fingerprints_identical_content(self):
        snapshot = Snapshot(snapshot_id="s")
        snapshot.add(b"\x07" * 6, 80)
        snapshot.add(b"\x07" * 6, 80)
        pairs = list(snapshot_to_chunks(snapshot))
        assert pairs[0][1] == pairs[1][1]
