"""Sliding-window histogram/counter: rotation, expiry, quantiles."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricError
from repro.obs.window import WindowedCounter, WindowedHistogram


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestWindowedHistogram:
    def test_validation(self, clock):
        with pytest.raises(MetricError):
            WindowedHistogram(window_seconds=0, clock=clock)
        with pytest.raises(MetricError):
            WindowedHistogram(slots=0, clock=clock)
        with pytest.raises(MetricError):
            WindowedHistogram(bounds=(2.0, 1.0), clock=clock)

    def test_empty_snapshot_is_zero(self, clock):
        h = WindowedHistogram(clock=clock)
        snap = h.snapshot()
        assert snap.count == 0
        assert snap.p99 == 0.0
        assert snap.rate == 0.0

    def test_observations_inside_window_counted(self, clock):
        h = WindowedHistogram(window_seconds=10.0, slots=10, clock=clock)
        for _ in range(20):
            h.observe(0.005)
        assert h.count() == 20
        assert h.rate() == pytest.approx(2.0)
        # The estimate lands inside the bucket that holds 5ms.
        assert 0.001 < h.quantile(0.5) <= 0.01

    def test_old_observations_expire(self, clock):
        h = WindowedHistogram(window_seconds=10.0, slots=10, clock=clock)
        h.observe(1.0)
        clock.advance(5.0)
        h.observe(2.0)
        assert h.count() == 2
        clock.advance(6.0)  # first observation now outside the window
        assert h.count() == 1
        clock.advance(10.0)
        assert h.count() == 0

    def test_slot_reuse_resets_stale_data(self, clock):
        # Advancing by exactly one full window lands writes back on the
        # same ring slots, which must forget their previous contents.
        h = WindowedHistogram(window_seconds=10.0, slots=5, clock=clock)
        for _ in range(50):
            h.observe(0.001)
        clock.advance(10.0)
        h.observe(0.001)
        assert h.count() == 1

    def test_spike_visible_after_long_quiet_history(self, clock):
        # The whole point vs a cumulative histogram: old healthy traffic
        # cannot drown a fresh latency spike.
        h = WindowedHistogram(window_seconds=10.0, slots=10, clock=clock)
        for _ in range(1000):
            h.observe(0.001)
        clock.advance(30.0)
        for _ in range(10):
            h.observe(5.0)
        assert h.count() == 10
        assert h.quantile(0.99) >= 5.0

    def test_snapshot_consistent_fields(self, clock):
        h = WindowedHistogram(window_seconds=10.0, clock=clock)
        for value in (0.001, 0.002, 0.003):
            h.observe(value)
        snap = h.snapshot()
        assert snap.count == 3
        assert snap.sum == pytest.approx(0.006)
        assert snap.p50 <= snap.p95 <= snap.p99

    def test_thread_safety(self, clock):
        h = WindowedHistogram(window_seconds=60.0, clock=clock)

        def work():
            for _ in range(1000):
                h.observe(0.01)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count() == 8000


class TestWindowedCounter:
    def test_validation(self, clock):
        with pytest.raises(MetricError):
            WindowedCounter(window_seconds=0, clock=clock)
        with pytest.raises(MetricError):
            WindowedCounter(slots=0, clock=clock)
        c = WindowedCounter(clock=clock)
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_value_and_rate_inside_window(self, clock):
        c = WindowedCounter(window_seconds=10.0, clock=clock)
        c.inc()
        c.inc(4)
        assert c.value() == 5
        assert c.rate() == pytest.approx(0.5)

    def test_expiry(self, clock):
        c = WindowedCounter(window_seconds=10.0, slots=10, clock=clock)
        c.inc(3)
        clock.advance(5.0)
        c.inc(2)
        assert c.value() == 5
        clock.advance(6.0)
        assert c.value() == 2
        clock.advance(20.0)
        assert c.value() == 0
