"""SLO declarations, tracker judgements, burn rates, registry gauges."""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.slo import SLO, SLOTracker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestSLO:
    def test_requires_at_least_one_target(self):
        with pytest.raises(ValueError):
            SLO(op="upload")

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            SLO(op="u", p99_seconds=0)
        with pytest.raises(ValueError):
            SLO(op="u", max_error_ratio=0.0)
        with pytest.raises(ValueError):
            SLO(op="u", max_error_ratio=1.5)
        with pytest.raises(ValueError):
            SLO(op="u", p99_seconds=1.0, window_seconds=0)

    def test_duplicate_ops_rejected_by_tracker(self, clock):
        slo = SLO(op="u", p99_seconds=1.0)
        with pytest.raises(ValueError):
            SLOTracker([slo, slo], clock=clock)


class TestSLOTracker:
    def test_healthy_run_does_not_breach(self, clock):
        tracker = SLOTracker([SLO(op="upload", p99_seconds=1.0)], clock=clock)
        for _ in range(100):
            tracker.observe("upload", 0.01)
        statuses = tracker.evaluate()
        assert len(statuses) == 1
        assert not statuses[0].breached
        assert not tracker.breached()

    def test_latency_breach_with_reason_and_burn(self, clock):
        tracker = SLOTracker(
            [SLO(op="upload", p99_seconds=0.01)], clock=clock
        )
        for _ in range(10):
            tracker.observe("upload", 5.0)  # all 10x over target
        (status,) = tracker.evaluate()
        assert status.breached
        assert any("p99" in reason for reason in status.reasons)
        # All requests over target against a 1% budget: burn = 1/0.01.
        assert status.latency_burn_rate == pytest.approx(100.0)

    def test_error_breach(self, clock):
        tracker = SLOTracker(
            [SLO(op="restore", max_error_ratio=0.01)], clock=clock
        )
        for i in range(100):
            tracker.observe("restore", 0.001, error=(i % 10 == 0))
        (status,) = tracker.evaluate()
        assert status.breached
        assert status.error_ratio == pytest.approx(0.1)
        assert status.error_burn_rate == pytest.approx(10.0)

    def test_breach_clears_when_window_slides_past(self, clock):
        tracker = SLOTracker(
            [SLO(op="u", p99_seconds=0.01, window_seconds=10.0)],
            clock=clock,
        )
        tracker.observe("u", 5.0)
        assert tracker.breached()
        clock.advance(11.0)
        tracker.observe("u", 0.001)
        assert not tracker.breached()

    def test_undeclared_op_tracked_but_never_breaches(self, clock):
        tracker = SLOTracker([], clock=clock)
        tracker.observe("mystery", 100.0, error=True)
        (status,) = tracker.evaluate()
        assert status.op == "mystery"
        assert status.count == 1
        assert not status.breached

    def test_gauges_published_to_registry(self, clock):
        tracker = SLOTracker(
            [SLO(op="up", p99_seconds=0.01, max_error_ratio=0.5)],
            clock=clock,
        )
        for _ in range(10):
            tracker.observe("up", 1.0)
        tracker.evaluate()
        snap = obs_metrics.get_registry().snapshot()
        assert snap['ted_slo_breached{op="up"}'] == 1
        assert snap['ted_slo_window_p99_seconds{op="up"}'] > 0.01
        assert snap['ted_slo_burn_rate{op="up",kind="latency"}'] == (
            pytest.approx(100.0)
        )

    def test_breach_counter_counts_transitions_once(self, clock):
        tracker = SLOTracker([SLO(op="t", p99_seconds=0.01)], clock=clock)
        counter = obs_metrics.get_registry().get("ted_slo_breach_total")
        before = counter.labels(op="t").value
        tracker.observe("t", 5.0)
        tracker.evaluate()
        tracker.evaluate()  # still breached: no second transition
        assert counter.labels(op="t").value == before + 1

    def test_describe_mentions_state(self, clock):
        tracker = SLOTracker([SLO(op="u", p99_seconds=10.0)], clock=clock)
        tracker.observe("u", 0.001)
        (status,) = tracker.evaluate()
        assert "u: ok" in status.describe()
