"""Exporters: Prometheus text format, JSON snapshot, span trees."""

from __future__ import annotations

import json

from repro.obs.export import (
    format_recorder,
    format_trace,
    json_snapshot_text,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanRecorder, Tracer


def _ids():
    state = {"n": 0}

    def source(n: int) -> bytes:
        state["n"] += 1
        return state["n"].to_bytes(n, "big")

    return source


class TestPrometheusText:
    def test_counter_and_gauge_samples(self):
        registry = MetricsRegistry()
        registry.counter("ted_x_total", "things").inc(3)
        registry.gauge("ted_g", "level").set(1.5)
        text = prometheus_text(registry)
        assert "# HELP ted_x_total things" in text
        assert "# TYPE ted_x_total counter" in text
        assert "ted_x_total 3" in text
        assert "ted_g 1.5" in text

    def test_labelled_samples(self):
        registry = MetricsRegistry()
        c = registry.counter("ted_ops_total", labelnames=("op",))
        c.labels(op="upload").inc(2)
        assert 'ted_ops_total{op="upload"} 2' in prometheus_text(registry)

    def test_histogram_series_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        h = registry.histogram("ted_h_seconds", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = prometheus_text(registry)
        assert 'ted_h_seconds_bucket{le="1"} 1' in text
        assert 'ted_h_seconds_bucket{le="2"} 2' in text
        assert 'ted_h_seconds_bucket{le="+Inf"} 3' in text
        assert "ted_h_seconds_count 3" in text
        assert "ted_h_seconds_sum 11" in text

    def test_scrape_body_ends_with_newline(self):
        assert prometheus_text(MetricsRegistry()).endswith("\n")


class TestJsonSnapshot:
    def test_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("ted_x_total").inc()
        registry.histogram("ted_h_seconds").observe(0.02)
        doc = json.loads(json_snapshot_text(registry))
        assert doc["metrics"]["ted_x_total"] == 1
        assert doc["metrics"]["ted_h_seconds_count"] == 1
        assert isinstance(doc["metrics"]["ted_h_seconds_p95"], float)


class TestSpanTrees:
    def test_tree_indents_children_and_events(self):
        tracer = Tracer(recorder=SpanRecorder(), id_source=_ids())
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                child.add_event("wire.retry", attempt=2)
        spans = tracer.recorder.for_trace(root.trace_id)
        text = format_trace(spans)
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert any(line.startswith("  - root") for line in lines)
        assert any(line.startswith("    - child") for line in lines)
        assert any("* event wire.retry attempt=2" in line for line in lines)

    def test_missing_parent_becomes_root(self):
        tracer = Tracer(recorder=SpanRecorder(), id_source=_ids())
        remote = None
        with tracer.span("invisible-parent") as parent:
            remote = parent.context
        other = Tracer(recorder=SpanRecorder(), id_source=_ids())
        with other.span("server-side", remote_parent=remote):
            pass
        spans = other.recorder.spans()
        text = format_trace(spans)
        assert "- server-side" in text

    def test_empty_recorder(self):
        assert format_recorder(SpanRecorder()) == "(no traces recorded)"

    def test_error_span_flagged(self):
        tracer = Tracer(recorder=SpanRecorder(), id_source=_ids())
        try:
            with tracer.span("bad"):
                raise ValueError("nope")
        except ValueError:
            pass
        text = format_recorder(tracer.recorder)
        assert "!error: ValueError: nope" in text


class TestLabelEscaping:
    def test_quotes_backslashes_newlines_escaped(self):
        registry = MetricsRegistry()
        c = registry.counter("ted_files_total", labelnames=("name",))
        c.labels(name='say "hi"').inc()
        c.labels(name="back\\slash").inc()
        c.labels(name="two\nlines").inc()
        text = prometheus_text(registry)
        assert 'name="say \\"hi\\""' in text
        assert 'name="back\\\\slash"' in text
        assert 'name="two\\nlines"' in text
        # No raw newline may survive inside any sample line.
        for line in text.splitlines():
            assert line.count('"') % 2 == 0

    def test_histogram_bucket_labels_escaped(self):
        registry = MetricsRegistry()
        h = registry.histogram(
            "ted_h_seconds", labelnames=("op",), buckets=(1.0,)
        )
        h.labels(op='odd"op').observe(0.5)
        text = prometheus_text(registry)
        assert 'ted_h_seconds_bucket{op="odd\\"op",le="1"} 1' in text

    def test_help_text_escaped(self):
        registry = MetricsRegistry()
        registry.counter("ted_x_total", "line one\nline two \\ done").inc()
        text = prometheus_text(registry)
        assert "# HELP ted_x_total line one\\nline two \\\\ done" in text


class TestFamilyHeaders:
    def test_help_and_type_once_per_family_with_many_children(self):
        registry = MetricsRegistry()
        c = registry.counter(
            "ted_ops_total", "operations", labelnames=("op",)
        )
        for op in ("upload", "restore", "delete"):
            c.labels(op=op).inc()
        h = registry.histogram(
            "ted_h_seconds", "latency", labelnames=("op",)
        )
        for op in ("upload", "restore"):
            h.labels(op=op).observe(0.1)
        text = prometheus_text(registry)
        assert text.count("# HELP ted_ops_total") == 1
        assert text.count("# TYPE ted_ops_total") == 1
        assert text.count("# HELP ted_h_seconds") == 1
        assert text.count("# TYPE ted_h_seconds histogram") == 1
        # ...while every child still gets its sample line.
        for op in ("upload", "restore", "delete"):
            assert f'ted_ops_total{{op="{op}"}} 1' in text
