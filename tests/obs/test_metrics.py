"""Metrics registry: instruments, labels, histograms, snapshots."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_MAX_CHILDREN,
    LATENCY_BUCKETS,
    bucket_quantile,
    MetricError,
    MetricsRegistry,
    get_registry,
    log_scale_buckets,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestBuckets:
    def test_default_span_covers_micro_to_tens_of_seconds(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert LATENCY_BUCKETS[-1] > 10.0
        assert len(LATENCY_BUCKETS) == 22

    def test_geometric_progression(self):
        buckets = log_scale_buckets(start=1.0, factor=2.0, count=5)
        assert buckets == (1.0, 2.0, 4.0, 8.0, 16.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(MetricError):
            log_scale_buckets(start=0.0)
        with pytest.raises(MetricError):
            log_scale_buckets(factor=1.0)
        with pytest.raises(MetricError):
            log_scale_buckets(count=0)


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("c_total")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("c_total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labelled_children_are_independent(self, registry):
        c = registry.counter("ops_total", labelnames=("op",))
        c.labels(op="upload").inc(3)
        c.labels(op="download").inc(1)
        assert c.labels(op="upload").value == 3
        assert c.labels(op="download").value == 1

    def test_unlabelled_use_of_labelled_instrument_fails(self, registry):
        c = registry.counter("ops_total", labelnames=("op",))
        with pytest.raises(MetricError):
            c.inc()

    def test_wrong_label_names_fail(self, registry):
        c = registry.counter("ops_total", labelnames=("op",))
        with pytest.raises(MetricError):
            c.labels(stage="x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12


class TestHistogram:
    def test_count_sum_and_buckets(self, registry):
        h = registry.histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        buckets = dict(h._only_child().buckets())
        assert buckets[1.0] == 1
        assert buckets[2.0] == 2
        assert buckets[4.0] == 3
        assert buckets[float("inf")] == 4
        snap = registry.snapshot()
        assert snap["h_seconds_count"] == 4
        assert snap["h_seconds_sum"] == pytest.approx(105.0)

    def test_quantiles_interpolate(self, registry):
        h = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        for _ in range(100):
            h.observe(0.5)
        # All observations in the first bucket: p50 interpolates inside it.
        assert 0.0 < h.quantile(0.5) <= 1.0
        assert h.quantile(0.0) == 0.0 or h.quantile(0.0) <= 1.0

    def test_quantile_empty_is_zero(self, registry):
        h = registry.histogram("h_seconds")
        assert h.quantile(0.95) == 0.0

    def test_overflow_clamps_to_largest_bound(self, registry):
        h = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == 2.0

    def test_time_context_manager(self, registry):
        h = registry.histogram("h_seconds")
        with h.time():
            pass
        assert h._only_child().count == 1

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total")
        assert a is b

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_label_conflict_raises(self, registry):
        registry.counter("x", labelnames=("a",))
        with pytest.raises(MetricError):
            registry.counter("x", labelnames=("b",))

    def test_snapshot_flattens_labels_and_histograms(self, registry):
        registry.counter("c_total", labelnames=("op",)).labels(op="u").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h_seconds").observe(0.01)
        snap = registry.snapshot()
        assert snap['c_total{op="u"}'] == 2
        assert snap["g"] == 1.5
        for tag in ("count", "sum", "p50", "p95", "p99"):
            assert f"h_seconds_{tag}" in snap

    def test_snapshot_pairs_sorted(self, registry):
        registry.counter("b").inc()
        registry.counter("a").inc()
        names = [name for name, _ in registry.snapshot_pairs()]
        assert names == sorted(names)

    def test_reset_zeroes_everything(self, registry):
        c = registry.counter("c_total", labelnames=("op",))
        c.labels(op="u").inc(5)
        registry.histogram("h_seconds").observe(1.0)
        registry.reset()
        assert registry.snapshot()["h_seconds_count"] == 0
        # Labelled children dropped entirely.
        assert 'c_total{op="u"}' not in registry.snapshot()

    def test_thread_safety_under_contention(self, registry):
        c = registry.counter("c_total")
        h = registry.histogram("h_seconds")

        def work():
            for _ in range(1000):
                c.inc()
                h.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000
        assert h._only_child().count == 8000

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestBucketQuantile:
    def test_empty_returns_zero(self):
        assert bucket_quantile([0, 0, 0], (1.0, 2.0), 0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(MetricError):
            bucket_quantile([1, 0, 0], (1.0, 2.0), 1.5)
        with pytest.raises(MetricError):
            bucket_quantile([1, 0, 0], (1.0, 2.0), -0.1)

    def test_q0_is_lower_edge_of_first_occupied_bucket(self):
        # First occupied bucket is (1.0, 2.0]; its lower edge is 1.0.
        assert bucket_quantile([0, 4, 0], (1.0, 2.0), 0.0) == 1.0

    def test_q1_is_upper_edge_of_last_occupied_bucket(self):
        assert bucket_quantile([3, 2, 0], (1.0, 2.0), 1.0) == 2.0

    def test_overflow_bucket_clamps_to_last_finite_edge(self):
        # All mass in +Inf: the documented finite sentinel is the last
        # finite bucket edge, never inf/nan.
        value = bucket_quantile([0, 0, 7], (1.0, 2.0), 0.99)
        assert value == 2.0

    def test_interpolates_within_bucket(self):
        # 10 observations in (1.0, 2.0]: p50 sits mid-bucket.
        value = bucket_quantile([0, 10, 0], (1.0, 2.0), 0.5)
        assert 1.0 < value <= 2.0


class TestCardinalityGuard:
    def test_default_cap_is_1024(self, registry):
        c = registry.counter("c_total", labelnames=("op",))
        assert c.max_children == DEFAULT_MAX_CHILDREN == 1024

    def test_exceeding_cap_raises_loudly(self, registry):
        c = registry.counter("c_total", labelnames=("n",), max_children=3)
        for n in range(3):
            c.labels(n=str(n)).inc()
        with pytest.raises(MetricError, match="c_total exceeded 3"):
            c.labels(n="boom")

    def test_existing_children_still_usable_at_cap(self, registry):
        c = registry.counter("c_total", labelnames=("n",), max_children=2)
        c.labels(n="a").inc()
        c.labels(n="b").inc()
        c.labels(n="a").inc()  # re-fetching a known child is fine
        assert c.labels(n="a").value == 2

    def test_cap_applies_to_histograms_and_gauges(self, registry):
        h = registry.histogram("h_seconds", labelnames=("n",), max_children=1)
        h.labels(n="a").observe(0.1)
        with pytest.raises(MetricError):
            h.labels(n="b")
        g = registry.gauge("g", labelnames=("n",), max_children=1)
        g.labels(n="a").set(1)
        with pytest.raises(MetricError):
            g.labels(n="b")

    def test_invalid_cap_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("c_total", labelnames=("n",), max_children=0)
