"""Tracing: span lifecycle, context propagation, wire codec tolerance."""

from __future__ import annotations

import itertools
import threading

import pytest

from repro.obs.tracing import (
    SPAN_ID_BYTES,
    TRACE_CONTEXT_VERSION,
    TRACE_ID_BYTES,
    SpanContext,
    SpanRecorder,
    Tracer,
    decode_context,
    encode_context,
)


def deterministic_ids():
    counter = itertools.count(1)

    def source(n: int) -> bytes:
        return next(counter).to_bytes(n, "big")

    return source


@pytest.fixture
def tracer():
    return Tracer(recorder=SpanRecorder(), id_source=deterministic_ids())


class TestContextCodec:
    def test_round_trip(self):
        ctx = SpanContext(
            trace_id=b"\xaa" * TRACE_ID_BYTES, span_id=b"\xbb" * SPAN_ID_BYTES
        )
        assert decode_context(encode_context(ctx)) == ctx

    def test_encoded_length(self):
        ctx = SpanContext(
            trace_id=b"\x00" * TRACE_ID_BYTES, span_id=b"\x00" * SPAN_ID_BYTES
        )
        assert len(encode_context(ctx)) == 1 + TRACE_ID_BYTES + SPAN_ID_BYTES

    @pytest.mark.parametrize(
        "blob",
        [
            None,
            b"",
            b"\x01",
            b"\x01" + b"\x00" * 10,  # too short
            bytes([TRACE_CONTEXT_VERSION]) + b"\x00" * 30,  # too long
            b"\x7f" + b"\x00" * (TRACE_ID_BYTES + SPAN_ID_BYTES),  # unknown ver
        ],
    )
    def test_malformed_decodes_to_none(self, blob):
        assert decode_context(blob) is None


class TestSpanLifecycle:
    def test_root_span_starts_new_trace(self, tracer):
        with tracer.span("root") as span:
            assert span.parent_span_id is None
            assert tracer.current_span() is span
        assert tracer.current_span() is None
        recorded = tracer.recorder.spans()
        assert [s.name for s in recorded] == ["root"]
        assert recorded[0].duration is not None

    def test_nesting_links_parent_and_shares_trace(self, tracer):
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.trace_id == parent.trace_id
                assert child.parent_span_id == parent.span_id
            # Parent restored after the child exits.
            assert tracer.current_span() is parent

    def test_remote_parent_overrides_local(self, tracer):
        remote = SpanContext(
            trace_id=b"\x11" * TRACE_ID_BYTES, span_id=b"\x22" * SPAN_ID_BYTES
        )
        with tracer.span("local-root"):
            with tracer.span("server", remote_parent=remote) as span:
                assert span.trace_id == remote.trace_id
                assert span.parent_span_id == remote.span_id

    def test_exception_marks_error_and_still_records(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        span = tracer.recorder.spans()[-1]
        assert span.status == "error"
        assert "kaput" in span.error
        assert span.end_time is not None

    def test_events_are_ordered_and_named(self, tracer):
        with tracer.span("s") as span:
            span.add_event("wire.retry", attempt=1)
            span.add_event("wire.reconnect")
        assert span.event_names() == ["wire.retry", "wire.reconnect"]
        assert span.events[0][2] == {"attempt": 1}

    def test_inject_requires_active_span(self, tracer):
        assert tracer.inject() is None
        with tracer.span("s") as span:
            ctx = decode_context(tracer.inject())
            assert ctx == span.context

    def test_threads_do_not_inherit_foreign_current_span(self, tracer):
        seen = {}

        def worker():
            seen["span"] = tracer.current_span()

        with tracer.span("main-thread"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["span"] is None


class TestRecorder:
    def test_bounded_capacity_keeps_newest(self):
        recorder = SpanRecorder(capacity=2)
        tracer = Tracer(recorder=recorder, id_source=deterministic_ids())
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.name for s in recorder.spans()] == ["b", "c"]

    def test_for_trace_filters(self, tracer):
        with tracer.span("t1"):
            pass
        with tracer.span("t2"):
            pass
        ids = tracer.recorder.trace_ids()
        assert len(ids) == 2
        assert [s.name for s in tracer.recorder.for_trace(ids[0])] == ["t1"]

    def test_capacity_used_and_dropped_exposed(self):
        recorder = SpanRecorder(capacity=2)
        tracer = Tracer(recorder=recorder, id_source=deterministic_ids())
        assert recorder.capacity == 2
        assert recorder.used == 0
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert recorder.used == 2
        assert recorder.dropped == 1

    def test_evictions_counted_in_registry(self):
        from repro.obs import metrics as obs_metrics

        counter = obs_metrics.get_registry().get(
            "ted_trace_spans_dropped_total"
        )
        before = counter.value
        recorder = SpanRecorder(capacity=1)
        tracer = Tracer(recorder=recorder, id_source=deterministic_ids())
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert counter.value == before + 2
