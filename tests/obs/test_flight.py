"""Flight recorder: bounded rotation, replay, torn-tail tolerance."""

from __future__ import annotations

import json

import pytest

from repro.obs.flight import (
    ROTATED_SUFFIX,
    FlightRecorder,
    iter_flight,
    read_ops,
)
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.001
        return self.now


@pytest.fixture
def path(tmp_path):
    return tmp_path / "flight.jsonl"


class TestFlightRecorder:
    def test_rejects_tiny_budget(self, path):
        with pytest.raises(ValueError):
            FlightRecorder(path, max_bytes=100)

    def test_events_round_trip(self, path):
        with FlightRecorder(path, clock=FakeClock()) as recorder:
            recorder.emit_meta(profile="smoke", seed=7)
            recorder.emit_op("upload", "t0", 0.05, True, nbytes=4096)
            recorder.emit_op(
                "restore", "t1", 0.01, False, error="NotFound"
            )
        events = list(iter_flight(path))
        assert [e["kind"] for e in events] == ["meta", "op", "op"]
        assert events[0]["profile"] == "smoke"
        assert events[1]["bytes"] == 4096
        assert events[2]["error"] == "NotFound"
        ops = read_ops(path)
        assert len(ops) == 2
        # Timestamps are monotonic within the file.
        assert ops[0]["ts"] < ops[1]["ts"]

    def test_rotation_bounds_disk_and_keeps_recent_history(self, path):
        recorder = FlightRecorder(path, max_bytes=4096, clock=FakeClock())
        for i in range(200):
            recorder.emit("op", op="upload", tenant="t0", seq=i, ok=True)
        recorder.close()
        rotated = path.with_name(path.name + ROTATED_SUFFIX)
        assert rotated.exists()
        total = path.stat().st_size + rotated.stat().st_size
        assert total <= 4096 + 128  # budget plus at most one event
        events = list(iter_flight(path))
        # The most recent events always survive, in order.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 199

    def test_closed_recorder_drops_events_silently(self, path):
        recorder = FlightRecorder(path, clock=FakeClock())
        recorder.close()
        recorder.emit("op", op="upload")  # must not raise
        assert list(iter_flight(path)) == []

    def test_metrics_delta_only_reports_changes(self, path):
        registry = MetricsRegistry()
        counter = registry.counter("ted_x_total")
        with FlightRecorder(path, clock=FakeClock()) as recorder:
            counter.inc(3)
            recorder.emit_metrics_delta(registry)
            recorder.emit_metrics_delta(registry)  # nothing moved
            counter.inc()
            recorder.emit_metrics_delta(registry)
        deltas = [
            e["delta"] for e in iter_flight(path) if e["kind"] == "metrics"
        ]
        assert deltas == [{"ted_x_total": 3}, {"ted_x_total": 4}]


class TestIterFlight:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_flight(tmp_path / "nope.jsonl"))

    def test_torn_final_line_skipped(self, path):
        path.write_text(
            json.dumps({"ts": 1, "kind": "op", "ok": True})
            + "\n"
            + '{"ts": 2, "kind": "op", "o'  # crashed mid-append
        )
        events = list(iter_flight(path))
        assert len(events) == 1

    def test_torn_interior_line_raises(self, path):
        path.write_text(
            '{"broken\n' + json.dumps({"ts": 2, "kind": "op"}) + "\n"
        )
        with pytest.raises(ValueError, match="damaged flight record"):
            list(iter_flight(path))

    def test_rotated_file_read_first(self, path):
        rotated = path.with_name(path.name + ROTATED_SUFFIX)
        rotated.write_text(json.dumps({"ts": 1, "kind": "op", "n": 1}) + "\n")
        path.write_text(json.dumps({"ts": 2, "kind": "op", "n": 2}) + "\n")
        assert [e["n"] for e in iter_flight(path)] == [1, 2]
