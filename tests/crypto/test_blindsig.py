"""Blind key-generation protocols: server-aided MLE contract checks."""

import random

import pytest

from repro.crypto import rsa
from repro.crypto.blindsig import (
    BlindBLSClient,
    BlindBLSKeyServer,
    BlindRSAClient,
    BlindRSAKeyServer,
)

_FPS = [b"fp-%d" % i for i in range(6)]


@pytest.fixture(scope="module")
def rsa_server():
    key = rsa.generate_keypair(bits=1024, rng=random.Random(11))
    return BlindRSAKeyServer(key=key)


@pytest.fixture(scope="module")
def bls_server():
    return BlindBLSKeyServer(rng=random.Random(12))


class TestBlindRSAProtocol:
    def test_keys_deterministic_despite_blinding(self, rsa_server):
        client = BlindRSAClient(rsa_server.public_key, rng=random.Random(1))
        other = BlindRSAClient(rsa_server.public_key, rng=random.Random(2))
        assert client.generate_keys(_FPS, rsa_server) == other.generate_keys(
            _FPS, rsa_server
        )

    def test_distinct_fingerprints_distinct_keys(self, rsa_server):
        client = BlindRSAClient(rsa_server.public_key, rng=random.Random(1))
        keys = client.generate_keys(_FPS, rsa_server)
        assert len(set(keys)) == len(_FPS)

    def test_key_length(self, rsa_server):
        client = BlindRSAClient(rsa_server.public_key, rng=random.Random(1))
        keys = client.generate_keys(_FPS[:1], rsa_server)
        assert len(keys[0]) == 32

    def test_verification_path(self, rsa_server):
        client = BlindRSAClient(
            rsa_server.public_key, rng=random.Random(1), verify=True
        )
        blinded, r = client.blind_fingerprint(b"fp")
        sig = rsa_server.sign_blinded(blinded)
        key = client.derive_key(b"fp", sig, r)
        assert len(key) == 32

    def test_verification_catches_forgery(self, rsa_server):
        client = BlindRSAClient(
            rsa_server.public_key, rng=random.Random(1), verify=True
        )
        _, r = client.blind_fingerprint(b"fp")
        with pytest.raises(ValueError):
            client.derive_key(b"fp", 1234567, r)

    def test_server_never_sees_fingerprint(self, rsa_server):
        # The blinded representative differs from the unblinded hash.
        client = BlindRSAClient(rsa_server.public_key, rng=random.Random(1))
        m = rsa.hash_to_int(b"fp", rsa_server.public_key.n)
        blinded, _ = client.blind_fingerprint(b"fp")
        assert blinded != m


class TestBlindBLSProtocol:
    def test_keys_deterministic_despite_blinding(self, bls_server):
        client = BlindBLSClient(rng=random.Random(3))
        other = BlindBLSClient(rng=random.Random(4))
        assert client.generate_keys(_FPS, bls_server) == other.generate_keys(
            _FPS, bls_server
        )

    def test_distinct_fingerprints_distinct_keys(self, bls_server):
        client = BlindBLSClient(rng=random.Random(3))
        keys = client.generate_keys(_FPS, bls_server)
        assert len(set(keys)) == len(_FPS)

    def test_rejects_invalid_blinded_point(self, bls_server):
        with pytest.raises(ValueError):
            bls_server.sign_blinded(None)

    def test_cross_protocol_keys_differ(self, rsa_server, bls_server):
        rsa_client = BlindRSAClient(rsa_server.public_key, rng=random.Random(1))
        bls_client = BlindBLSClient(rng=random.Random(2))
        assert rsa_client.generate_keys(_FPS[:1], rsa_server) != \
            bls_client.generate_keys(_FPS[:1], bls_server)
