"""Hash helpers: concatenation unambiguity, fingerprints, HMAC."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashes import (
    digest,
    fingerprint,
    hash_concat,
    hmac_digest,
    new_hash,
    truncated_fingerprint,
)


class TestDigest:
    def test_sha256_matches_hashlib(self):
        assert digest(b"abc") == hashlib.sha256(b"abc").digest()

    def test_md5_matches_hashlib(self):
        assert digest(b"abc", "md5") == hashlib.md5(b"abc").digest()

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            new_hash("sha512-fake")


class TestHashConcat:
    def test_length_prefix_prevents_ambiguity(self):
        # Without length prefixes these would collide.
        assert hash_concat([b"ab", b"c"]) != hash_concat([b"a", b"bc"])

    def test_component_count_matters(self):
        assert hash_concat([b"ab"]) != hash_concat([b"a", b"b"])

    def test_int_components(self):
        assert hash_concat([b"k", 5]) != hash_concat([b"k", 6])

    def test_int_zero_encodes(self):
        assert hash_concat([0]) != hash_concat([1])

    def test_string_components_utf8(self):
        assert hash_concat(["héllo"]) == hash_concat(["héllo".encode()])

    def test_rejects_negative_int(self):
        with pytest.raises(ValueError):
            hash_concat([-1])

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            hash_concat([1.5])

    def test_md5_profile(self):
        assert len(hash_concat([b"x"], algorithm="md5")) == 16

    @given(st.lists(st.binary(max_size=16), min_size=1, max_size=5))
    def test_deterministic(self, parts):
        assert hash_concat(parts) == hash_concat(parts)


class TestFingerprints:
    def test_fingerprint_is_content_hash(self):
        assert fingerprint(b"chunk") == hashlib.sha256(b"chunk").digest()

    def test_truncated_fsl_width(self):
        fp = truncated_fingerprint(b"chunk", bits=48)
        assert len(fp) == 6
        assert fp == hashlib.sha256(b"chunk").digest()[:6]

    def test_truncated_ms_width(self):
        assert len(truncated_fingerprint(b"chunk", bits=40)) == 5

    @pytest.mark.parametrize("bits", [0, -8, 7, 12])
    def test_truncated_rejects_bad_bits(self, bits):
        with pytest.raises(ValueError):
            truncated_fingerprint(b"chunk", bits=bits)

    def test_truncated_rejects_overlong(self):
        with pytest.raises(ValueError):
            truncated_fingerprint(b"chunk", bits=512)


class TestHmac:
    def test_matches_hashlib_hmac(self):
        import hmac

        assert hmac_digest(b"key", b"msg") == hmac.new(
            b"key", b"msg", "sha256"
        ).digest()

    def test_key_matters(self):
        assert hmac_digest(b"k1", b"m") != hmac_digest(b"k2", b"m")

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            hmac_digest(b"k", b"m", "nope")
