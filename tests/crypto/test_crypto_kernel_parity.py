"""Batched crypto kernels must be byte-identical to the references.

The batched fast paths (DESIGN.md §16) — AES T-table ``encrypt_blocks``,
the single-call CTR keystream, and the SHA-CTR midstate keystream — are
pure optimizations: with ``REPRO_KERNELS`` toggled off the originals run,
and these tests pin the two implementations to each other on random and
adversarial inputs. Any divergence would silently break deduplication
(the same chunk would stop producing the same ciphertext).
"""

import random

import pytest

from repro.crypto import shactr
from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.modes import ctr_encrypt, ctr_keystream
from repro.utils import kernels


@pytest.fixture
def kernels_on():
    previous = kernels.set_kernels_enabled(True)
    yield
    kernels.set_kernels_enabled(previous)


def _with_kernels(enabled, fn):
    previous = kernels.set_kernels_enabled(enabled)
    try:
        return fn()
    finally:
        kernels.set_kernels_enabled(previous)


@pytest.mark.parametrize("key_size", [16, 24, 32])
def test_encrypt_blocks_matches_per_block(kernels_on, key_size):
    rng = random.Random(key_size)
    cipher = AES(bytes(rng.randrange(256) for _ in range(key_size)))
    for nblocks in (0, 1, 2, 7, 64):
        data = bytes(rng.randrange(256) for _ in range(nblocks * BLOCK_SIZE))
        expected = b"".join(
            cipher.encrypt_block(data[i : i + BLOCK_SIZE])
            for i in range(0, len(data), BLOCK_SIZE)
        )
        assert cipher.encrypt_blocks(data) == expected


def test_encrypt_blocks_rejects_partial_blocks(kernels_on):
    cipher = AES(b"k" * 16)
    with pytest.raises(ValueError):
        cipher.encrypt_blocks(b"\x00" * 17)


def test_encrypt_blocks_off_path_matches_on_path():
    cipher = AES(b"\x07" * 32)
    data = bytes(range(256)) * 2
    on = _with_kernels(True, lambda: cipher.encrypt_blocks(data))
    off = _with_kernels(False, lambda: cipher.encrypt_blocks(data))
    assert on == off


@pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 4096, 16384 + 5])
def test_ctr_parity(length):
    rng = random.Random(length)
    key = bytes(rng.randrange(256) for _ in range(32))
    nonce = bytes(rng.randrange(256) for _ in range(16))
    data = bytes(rng.randrange(256) for _ in range(length))
    on = _with_kernels(True, lambda: ctr_encrypt(key, nonce, data))
    off = _with_kernels(False, lambda: ctr_encrypt(key, nonce, data))
    assert on == off
    # Round trip through the involution on the fast path.
    assert _with_kernels(True, lambda: ctr_encrypt(key, nonce, on)) == data


def test_ctr_counter_wraparound_parity():
    # A nonce close to 2^128 makes the counter wrap inside the message;
    # the batched buffer fill must wrap exactly like the per-block loop.
    key = b"\x42" * 16
    nonce = b"\xff" * 16
    data = bytes(range(160))
    on = _with_kernels(True, lambda: ctr_encrypt(key, nonce, data))
    off = _with_kernels(False, lambda: ctr_encrypt(key, nonce, data))
    assert on == off


def test_ctr_keystream_prefix_consistency(kernels_on):
    cipher = AES(b"\x01" * 16)
    nonce = bytes(16)
    long = ctr_keystream(cipher, nonce, 512)
    for length in (0, 1, 31, 32, 33, 511):
        assert ctr_keystream(cipher, nonce, length) == long[:length]


@pytest.mark.parametrize("length", [0, 1, 31, 32, 33, 4096, 100_001])
def test_shactr_keystream_parity(length):
    key, nonce = b"k" * 32, b"n" * 16
    on = _with_kernels(
        True, lambda: shactr.keystream(key, nonce, length)
    )
    off = _with_kernels(
        False, lambda: shactr.keystream(key, nonce, length)
    )
    assert on == off


def test_shactr_encrypt_roundtrip_parity():
    rng = random.Random(5)
    key = bytes(rng.randrange(256) for _ in range(32))
    nonce = bytes(rng.randrange(256) for _ in range(16))
    for size in (0, 1, 63, 64, 65, 16384):
        data = bytes(rng.randrange(256) for _ in range(size))
        on = _with_kernels(True, lambda: shactr.encrypt(key, nonce, data))
        off = _with_kernels(False, lambda: shactr.encrypt(key, nonce, data))
        assert on == off
        assert _with_kernels(
            True, lambda: shactr.decrypt(key, nonce, on)
        ) == data


def test_shactr_counter_cache_overflow(monkeypatch):
    # Requests beyond the cache cap must fall back to computing the tail
    # without growing the cache past its bound.
    monkeypatch.setattr(shactr, "_COUNTER_CACHE", [])
    monkeypatch.setattr(shactr, "_COUNTER_CACHE_MAX", 8)
    counters = shactr._counter_bytes(12)
    assert counters == [c.to_bytes(8, "big") for c in range(12)]
    assert len(shactr._COUNTER_CACHE) == 8
    # A shorter follow-up request slices the cached prefix.
    assert shactr._counter_bytes(3) == [
        c.to_bytes(8, "big") for c in range(3)
    ]
