"""CTR/CBC modes and PKCS#7 padding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_decrypt,
    ctr_encrypt,
    ctr_keystream,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.aes import AES

_KEY = b"0123456789abcdef"
_IV = b"\x01" * 16


class TestPkcs7:
    @given(st.binary(max_size=100))
    def test_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    @given(st.binary(max_size=100))
    def test_padded_is_block_aligned(self, data):
        assert len(pkcs7_pad(data)) % 16 == 0

    def test_full_block_gets_full_pad(self):
        assert len(pkcs7_pad(b"x" * 16)) == 32

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"")

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"x" * 15)

    def test_rejects_bad_pad_byte(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"x" * 15 + b"\x00")

    def test_rejects_inconsistent_padding(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"x" * 14 + b"\x01\x02")

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", block_size=0)


class TestCtr:
    @given(st.binary(max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, data):
        assert ctr_decrypt(_KEY, _IV, ctr_encrypt(_KEY, _IV, data)) == data

    def test_involution(self):
        data = b"involution test data!"
        once = ctr_encrypt(_KEY, _IV, data)
        assert ctr_encrypt(_KEY, _IV, once) == data

    def test_deterministic(self):
        data = b"same in, same out"
        assert ctr_encrypt(_KEY, _IV, data) == ctr_encrypt(_KEY, _IV, data)

    def test_nonce_matters(self):
        data = b"nonce sensitivity"
        assert ctr_encrypt(_KEY, _IV, data) != ctr_encrypt(
            _KEY, b"\x02" * 16, data
        )

    def test_keystream_length(self):
        cipher = AES(_KEY)
        for n in (0, 1, 15, 16, 17, 100):
            assert len(ctr_keystream(cipher, _IV, n)) == n

    def test_keystream_counter_increments(self):
        cipher = AES(_KEY)
        long = ctr_keystream(cipher, _IV, 48)
        assert long[:16] != long[16:32]

    def test_counter_wraps_at_128_bits(self):
        cipher = AES(_KEY)
        stream = ctr_keystream(cipher, b"\xff" * 16, 32)
        wrapped = ctr_keystream(cipher, b"\x00" * 16, 16)
        assert stream[16:] == wrapped

    def test_rejects_bad_nonce(self):
        with pytest.raises(ValueError):
            ctr_encrypt(_KEY, b"short", b"data")


class TestCbc:
    @given(st.binary(max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, data):
        assert cbc_decrypt(_KEY, _IV, cbc_encrypt(_KEY, _IV, data)) == data

    def test_ciphertext_block_aligned(self):
        assert len(cbc_encrypt(_KEY, _IV, b"hello")) % 16 == 0

    def test_iv_matters(self):
        data = b"cbc iv sensitivity"
        assert cbc_encrypt(_KEY, _IV, data) != cbc_encrypt(
            _KEY, b"\x02" * 16, data
        )

    def test_identical_blocks_chain(self):
        # ECB would map equal plaintext blocks to equal ciphertext blocks;
        # CBC must not.
        data = b"A" * 32
        ct = cbc_encrypt(_KEY, _IV, data)
        assert ct[:16] != ct[16:32]

    def test_tampering_breaks_padding_or_content(self):
        ct = bytearray(cbc_encrypt(_KEY, _IV, b"authentic"))
        ct[-1] ^= 0xFF
        try:
            out = cbc_decrypt(_KEY, _IV, bytes(ct))
        except ValueError:
            return  # padding check caught it
        assert out != b"authentic"

    def test_rejects_misaligned_ciphertext(self):
        with pytest.raises(ValueError):
            cbc_decrypt(_KEY, _IV, b"x" * 17)

    def test_rejects_bad_iv(self):
        with pytest.raises(ValueError):
            cbc_encrypt(_KEY, b"short", b"data")
