"""Shamir secret sharing over a prime field."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.shamir import (
    Share,
    lagrange_coefficients_at_zero,
    reconstruct,
    split,
)

_PRIME = 2**127 - 1  # a Mersenne prime, plenty large for tests


class TestSplitReconstruct:
    def test_roundtrip(self):
        rng = random.Random(1)
        secret = 123456789
        shares = split(secret, threshold=3, num_shares=5, prime=_PRIME, rng=rng)
        assert reconstruct(shares[:3], _PRIME) == secret

    def test_any_subset_works(self):
        rng = random.Random(2)
        secret = 42
        shares = split(secret, threshold=2, num_shares=4, prime=_PRIME, rng=rng)
        import itertools

        for subset in itertools.combinations(shares, 2):
            assert reconstruct(list(subset), _PRIME) == secret

    def test_more_than_threshold_works(self):
        rng = random.Random(3)
        shares = split(7, threshold=2, num_shares=5, prime=_PRIME, rng=rng)
        assert reconstruct(shares, _PRIME) == 7

    def test_below_threshold_reveals_nothing_useful(self):
        # With t-1 shares, every candidate secret is equally consistent; a
        # cheap proxy check: reconstructing from t-1 shares gives a value
        # that is (almost surely) not the secret.
        rng = random.Random(4)
        secret = 999_999_999
        shares = split(secret, threshold=3, num_shares=5, prime=_PRIME, rng=rng)
        assert reconstruct(shares[:2], _PRIME) != secret

    def test_threshold_one_is_replication(self):
        shares = split(5, threshold=1, num_shares=3, prime=_PRIME)
        assert all(share.y == 5 for share in shares)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, _PRIME - 1),
        st.integers(1, 5),
        st.integers(0, 3),
    )
    def test_roundtrip_property(self, secret, threshold, extra):
        num_shares = threshold + extra
        rng = random.Random(99)
        shares = split(secret, threshold, num_shares, _PRIME, rng=rng)
        assert reconstruct(shares[:threshold], _PRIME) == secret

    def test_validation(self):
        with pytest.raises(ValueError):
            split(-1, 2, 3, _PRIME)
        with pytest.raises(ValueError):
            split(_PRIME, 2, 3, _PRIME)
        with pytest.raises(ValueError):
            split(1, 0, 3, _PRIME)
        with pytest.raises(ValueError):
            split(1, 4, 3, _PRIME)
        with pytest.raises(ValueError):
            split(1, 2, 7, prime=7)


class TestLagrange:
    def test_coefficients_sum_to_one_for_constant(self):
        # Interpolating a constant polynomial: coefficients sum to 1.
        coefficients = lagrange_coefficients_at_zero([1, 2, 3], _PRIME)
        assert sum(coefficients) % _PRIME == 1

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            lagrange_coefficients_at_zero([1, 1], _PRIME)

    def test_reconstruct_empty(self):
        with pytest.raises(ValueError):
            reconstruct([], _PRIME)

    def test_linear_polynomial_by_hand(self):
        # f(x) = 10 + 3x over the field; shares at x=1,2.
        shares = [Share(1, 13), Share(2, 16)]
        assert reconstruct(shares, _PRIME) == 10
