"""P-256 group arithmetic and hash-to-curve."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ec


class TestGroupLaw:
    def test_generator_on_curve(self):
        assert ec.is_on_curve(ec.GENERATOR)

    def test_infinity_on_curve(self):
        assert ec.is_on_curve(None)

    def test_order_annihilates_generator(self):
        assert ec.scalar_mult(ec.N, ec.GENERATOR) is None

    def test_identity_element(self):
        assert ec.point_add(ec.GENERATOR, None) == ec.GENERATOR
        assert ec.point_add(None, ec.GENERATOR) == ec.GENERATOR
        assert ec.point_add(None, None) is None

    def test_inverse_element(self):
        assert ec.point_add(ec.GENERATOR, ec.point_neg(ec.GENERATOR)) is None

    def test_doubling_matches_addition(self):
        assert ec.point_add(ec.GENERATOR, ec.GENERATOR) == ec.scalar_mult(
            2, ec.GENERATOR
        )

    def test_known_scalar_multiple(self):
        # 2G for P-256 (public test vector).
        twice = ec.scalar_mult(2, ec.GENERATOR)
        assert twice[0] == int(
            "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978",
            16,
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 1000), st.integers(1, 1000))
    def test_scalar_distributivity(self, a, b):
        left = ec.scalar_mult(a + b, ec.GENERATOR)
        right = ec.point_add(
            ec.scalar_mult(a, ec.GENERATOR), ec.scalar_mult(b, ec.GENERATOR)
        )
        assert left == right

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 500), st.integers(2, 500))
    def test_scalar_associativity(self, a, b):
        assert ec.scalar_mult(a, ec.scalar_mult(b, ec.GENERATOR)) == ec.scalar_mult(
            a * b % ec.N, ec.GENERATOR
        )

    def test_scalar_zero(self):
        assert ec.scalar_mult(0, ec.GENERATOR) is None


class TestHashToCurve:
    @pytest.mark.parametrize("data", [b"", b"a", b"chunk-fp", b"\xff" * 32])
    def test_output_on_curve(self, data):
        assert ec.is_on_curve(ec.hash_to_curve(data))

    def test_deterministic(self):
        assert ec.hash_to_curve(b"x") == ec.hash_to_curve(b"x")

    def test_distinct_inputs_distinct_points(self):
        assert ec.hash_to_curve(b"a") != ec.hash_to_curve(b"b")


class TestEncoding:
    def test_roundtrip(self):
        point = ec.scalar_mult(12345, ec.GENERATOR)
        assert ec.decode_point(ec.encode_point(point)) == point

    def test_infinity_roundtrip(self):
        assert ec.decode_point(ec.encode_point(None)) is None

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ec.decode_point(b"\x01" * 63)

    def test_rejects_off_curve_point(self):
        bogus = (5).to_bytes(32, "big") + (7).to_bytes(32, "big")
        with pytest.raises(ValueError):
            ec.decode_point(bogus)
