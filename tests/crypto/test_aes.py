"""AES block cipher against FIPS-197 vectors plus structural properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE

_FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestFipsVectors:
    @pytest.mark.parametrize(
        "key_len,expected",
        [
            (16, "69c4e0d86a7b0430d8cdb78070b4c55a"),
            (24, "dda97ca4864cdfe06eaf70a0ec0d7191"),
            (32, "8ea2b7ca516745bfeafc49904b496089"),
        ],
    )
    def test_fips197_appendix_c(self, key_len, expected):
        cipher = AES(bytes(range(key_len)))
        assert cipher.encrypt_block(_FIPS_PLAINTEXT).hex() == expected

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_fips197_decrypt(self, key_len):
        cipher = AES(bytes(range(key_len)))
        ct = cipher.encrypt_block(_FIPS_PLAINTEXT)
        assert cipher.decrypt_block(ct) == _FIPS_PLAINTEXT

    def test_aes128_zero_key_known_answer(self):
        # NIST SP 800-38A / common KAT: AES-128(0^128, 0^128).
        cipher = AES(b"\x00" * 16)
        assert (
            cipher.encrypt_block(b"\x00" * 16).hex()
            == "66e94bd4ef8a2c3b884cfa59ca342b2e"
        )


class TestStructure:
    @pytest.mark.parametrize("key_len,rounds", [(16, 10), (24, 12), (32, 14)])
    def test_round_counts(self, key_len, rounds):
        assert AES(bytes(key_len)).rounds == rounds

    @pytest.mark.parametrize("bad_len", [0, 8, 15, 17, 33, 64])
    def test_rejects_bad_key_lengths(self, bad_len):
        with pytest.raises(ValueError):
            AES(bytes(bad_len))

    @pytest.mark.parametrize("bad_len", [0, 15, 17, 32])
    def test_rejects_bad_block_lengths(self, bad_len):
        cipher = AES(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(bad_len))
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(bad_len))

    def test_encryption_is_a_permutation(self):
        cipher = AES(b"k" * 16)
        blocks = {bytes([i]) + bytes(15) for i in range(64)}
        images = {cipher.encrypt_block(b) for b in blocks}
        assert len(images) == len(blocks)

    @settings(max_examples=25, deadline=None)
    @given(
        st.binary(min_size=16, max_size=16),
        st.sampled_from([16, 24, 32]),
        st.data(),
    )
    def test_roundtrip_property(self, block, key_len, data):
        key = data.draw(st.binary(min_size=key_len, max_size=key_len))
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_different_keys_differ(self):
        block = bytes(BLOCK_SIZE)
        assert AES(b"a" * 16).encrypt_block(block) != AES(
            b"b" * 16
        ).encrypt_block(block)
