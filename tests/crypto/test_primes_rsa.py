"""Miller–Rabin, RSA keygen, and blind RSA signatures."""

import random

import pytest

from repro.crypto import rsa
from repro.crypto.primes import generate_prime, is_probable_prime, modinv

_MERSENNE_61 = 2**61 - 1
_CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601]


@pytest.fixture(scope="module")
def keypair():
    return rsa.generate_keypair(bits=1024, rng=random.Random(42))


class TestPrimes:
    @pytest.mark.parametrize("p", [2, 3, 5, 97, 199, 7919, _MERSENNE_61])
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", [0, 1, 4, 100, 7917, 2**61 + 1])
    def test_known_composites(self, n):
        assert not is_probable_prime(n)

    @pytest.mark.parametrize("n", _CARMICHAEL)
    def test_carmichael_numbers_rejected(self, n):
        # Fermat-style tests fail on these; Miller–Rabin must not.
        assert not is_probable_prime(n)

    def test_generate_prime_bit_length(self):
        rng = random.Random(7)
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng=rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_modinv(self):
        assert (3 * modinv(3, 7)) % 7 == 1
        assert (17 * modinv(17, 2**61 - 1)) % (2**61 - 1) == 1

    def test_modinv_nonexistent(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_modinv_matches_euclid_reference(self):
        from repro.crypto.primes import modinv_euclid

        rng = random.Random(11)
        m = 2**61 - 1
        for _ in range(20):
            a = rng.randrange(1, m)
            assert modinv(a, m) == modinv_euclid(a, m)


class TestRSA:
    def test_modulus_size(self, keypair):
        assert keypair.n.bit_length() == 1024

    def test_crt_signature_matches_plain_pow(self, keypair):
        m = 0x1234567890ABCDEF
        assert keypair.sign_raw(m) == pow(m, keypair.d, keypair.n)

    def test_sign_verify(self, keypair):
        m = rsa.hash_to_int(b"fingerprint", keypair.n)
        sig = keypair.sign_raw(m)
        assert rsa.verify_raw(keypair.public_key(), m, sig)

    def test_verify_rejects_wrong_signature(self, keypair):
        m = rsa.hash_to_int(b"fingerprint", keypair.n)
        assert not rsa.verify_raw(keypair.public_key(), m, 12345)

    def test_sign_rejects_out_of_range(self, keypair):
        with pytest.raises(ValueError):
            keypair.sign_raw(keypair.n)

    def test_hash_to_int_in_range(self, keypair):
        for i in range(20):
            m = rsa.hash_to_int(bytes([i]), keypair.n)
            assert 0 <= m < keypair.n

    def test_hash_to_int_deterministic(self, keypair):
        assert rsa.hash_to_int(b"x", keypair.n) == rsa.hash_to_int(
            b"x", keypair.n
        )

    def test_keygen_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            rsa.generate_keypair(bits=256)


class TestBlindRSA:
    def test_blind_unblind_recovers_signature(self, keypair):
        public = keypair.public_key()
        rng = random.Random(5)
        m = rsa.hash_to_int(b"chunk-fp", keypair.n)
        blinded, r = rsa.blind(public, m, rng=rng)
        sig = rsa.unblind(public, keypair.sign_raw(blinded), r)
        assert sig == keypair.sign_raw(m)

    def test_blinding_hides_message(self, keypair):
        # Two blindings of the same message look unrelated.
        public = keypair.public_key()
        rng = random.Random(6)
        m = rsa.hash_to_int(b"chunk-fp", keypair.n)
        blinded1, _ = rsa.blind(public, m, rng=rng)
        blinded2, _ = rsa.blind(public, m, rng=rng)
        assert blinded1 != blinded2
        assert blinded1 != m and blinded2 != m
