"""Cipher profiles: determinism (the dedup prerequisite) and key handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import FAST, SECURE, SHACTR, get_profile


class TestProfiles:
    @pytest.mark.parametrize("profile", [SECURE, FAST, SHACTR])
    def test_roundtrip(self, profile):
        key = b"K" * profile.key_size
        data = b"chunk data " * 3
        assert profile.decrypt(key, profile.encrypt(key, data)) == data

    @pytest.mark.parametrize("profile", [SECURE, FAST, SHACTR])
    def test_deterministic_encryption(self, profile):
        # Identical (key, plaintext) must give identical ciphertext, or
        # deduplication of ciphertext chunks would break.
        key = b"K" * profile.key_size
        data = b"duplicate chunk"
        assert profile.encrypt(key, data) == profile.encrypt(key, data)

    @pytest.mark.parametrize("profile", [SECURE, FAST, SHACTR])
    def test_key_sensitivity(self, profile):
        data = b"chunk"
        a = profile.encrypt(b"a" * profile.key_size, data)
        b = profile.encrypt(b"b" * profile.key_size, data)
        assert a != b

    def test_profiles_differ_from_each_other(self):
        key = b"K" * 32
        data = b"cross-profile"
        assert SECURE.encrypt(key, data) != SHACTR.encrypt(key, data)

    def test_hash_algorithms(self):
        assert SECURE.hash_algorithm == "sha256"
        assert FAST.hash_algorithm == "md5"

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=100))
    def test_roundtrip_any_key_material(self, key, data):
        # Keys are normalized to the profile size, so any derived-key length
        # must work.
        assert SHACTR.decrypt(key, SHACTR.encrypt(key, data)) == data


class TestKeyNormalization:
    def test_truncates_long_keys(self):
        assert FAST.normalize_key(b"x" * 32) == b"x" * 16

    def test_expands_short_keys(self):
        out = SECURE.normalize_key(b"md5-len-key-16by")
        assert len(out) == 32
        assert out.startswith(b"md5-len-key-16by")

    def test_expansion_deterministic(self):
        assert SECURE.normalize_key(b"s") == SECURE.normalize_key(b"s")

    def test_identity_on_exact_size(self):
        key = b"k" * 32
        assert SECURE.normalize_key(key) is not None
        assert SECURE.normalize_key(key) == key


class TestRegistry:
    @pytest.mark.parametrize("name", ["secure", "fast", "shactr"])
    def test_lookup(self, name):
        assert get_profile(name).name == name

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("quantum")
