"""MurmurHash3 correctness, including the full SMHasher verification."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.murmur3 import murmur3_x64_128, short_hashes


class TestMurmur3:
    def test_smhasher_verification_value(self):
        # The canonical SMHasher self-test: hash keys of length 0..255 with
        # descending seeds, hash the concatenated digests, and compare the
        # first 4 LE bytes against the published verification constant for
        # MurmurHash3_x64_128. Passing this pins every code path (blocks,
        # all tail lengths, seeding, finalization).
        digests = b""
        for i in range(256):
            digests += murmur3_x64_128(bytes(range(i)), seed=256 - i)
        final = murmur3_x64_128(digests, seed=0)
        assert int.from_bytes(final[:4], "little") == 0x6384BA69

    def test_empty_input_zero_seed(self):
        assert murmur3_x64_128(b"", 0) == b"\x00" * 16

    def test_digest_length(self):
        assert len(murmur3_x64_128(b"abc")) == 16

    def test_deterministic(self):
        assert murmur3_x64_128(b"chunk") == murmur3_x64_128(b"chunk")

    def test_seed_changes_digest(self):
        assert murmur3_x64_128(b"chunk", 1) != murmur3_x64_128(b"chunk", 2)

    @given(st.binary(max_size=200), st.binary(max_size=200))
    def test_distinct_inputs_distinct_digests(self, a, b):
        if a != b:
            assert murmur3_x64_128(a) != murmur3_x64_128(b)

    @given(st.binary(max_size=64))
    def test_tail_lengths_all_work(self, data):
        digest = murmur3_x64_128(data)
        assert len(digest) == 16


class TestShortHashes:
    def test_count_and_range(self):
        hashes = short_hashes(b"chunk", rows=4, width=1024)
        assert len(hashes) == 4
        assert all(0 <= h < 1024 for h in hashes)

    def test_deterministic(self):
        assert short_hashes(b"x", 4, 100) == short_hashes(b"x", 4, 100)

    def test_more_than_four_rows_chains_digests(self):
        hashes = short_hashes(b"chunk", rows=7, width=512)
        assert len(hashes) == 7
        assert all(0 <= h < 512 for h in hashes)

    def test_first_four_stable_as_rows_grow(self):
        four = short_hashes(b"chunk", 4, 512)
        seven = short_hashes(b"chunk", 7, 512)
        assert seven[:4] == four

    def test_seed_changes_hashes(self):
        assert short_hashes(b"c", 4, 2**20, seed=0) != short_hashes(
            b"c", 4, 2**20, seed=9
        )

    @pytest.mark.parametrize("rows,width", [(0, 10), (-1, 10), (4, 0)])
    def test_invalid_parameters(self, rows, width):
        with pytest.raises(ValueError):
            short_hashes(b"c", rows, width)

    @given(st.binary(min_size=1, max_size=64), st.integers(1, 8))
    def test_property_range(self, data, rows):
        width = 97
        hashes = short_hashes(data, rows, width)
        assert len(hashes) == rows
        assert all(0 <= h < width for h in hashes)
