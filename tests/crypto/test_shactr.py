"""SHA-256 counter-mode stream cipher (the throughput-path substitute)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import shactr

_KEY = b"k" * 32
_NONCE = b"n" * 16


class TestKeystream:
    @pytest.mark.parametrize("n", [0, 1, 31, 32, 33, 100])
    def test_length(self, n):
        assert len(shactr.keystream(_KEY, _NONCE, n)) == n

    def test_prefix_consistency(self):
        long = shactr.keystream(_KEY, _NONCE, 100)
        short = shactr.keystream(_KEY, _NONCE, 40)
        assert long[:40] == short

    def test_key_and_nonce_matter(self):
        base = shactr.keystream(_KEY, _NONCE, 32)
        assert shactr.keystream(b"x" * 32, _NONCE, 32) != base
        assert shactr.keystream(_KEY, b"m" * 16, 32) != base

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            shactr.keystream(_KEY, _NONCE, -1)


class TestEncrypt:
    @given(st.binary(max_size=300))
    def test_roundtrip(self, data):
        assert shactr.decrypt(
            _KEY, _NONCE, shactr.encrypt(_KEY, _NONCE, data)
        ) == data

    def test_involution(self):
        data = b"twice is identity"
        assert shactr.encrypt(_KEY, _NONCE, shactr.encrypt(_KEY, _NONCE, data)) == data

    def test_deterministic(self):
        assert shactr.encrypt(_KEY, _NONCE, b"d") == shactr.encrypt(
            _KEY, _NONCE, b"d"
        )

    def test_empty_input(self):
        assert shactr.encrypt(_KEY, _NONCE, b"") == b""

    def test_ciphertext_differs_from_plaintext(self):
        data = b"not the identity map" * 4
        assert shactr.encrypt(_KEY, _NONCE, data) != data
