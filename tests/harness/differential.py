"""Differential harness: serial vs pipelined client equivalence.

The pipelined upload path (DESIGN.md §10) promises *bit-identical* stored
state to the serial baseline. This harness makes that claim executable:
build two isolated deployments (own key manager, own on-disk provider),
run the same workload through each — one serial, one pipelined — and
assert that everything durable is equal:

* every byte under the provider's storage directory (containers, chunk
  index) — compared file by file;
* the sealed file/key recipes for every uploaded file;
* the provider's logical/physical dedup accounting (hence the dedup
  ratio);
* the key manager's Count-Min sketch counters, total, current ``t``,
  tracked frequency vector, and request count.

With a client fingerprint cache enabled, duplicate chunks never reach
the provider, so the *offered* chunk counters legitimately shrink; the
``ignore_offered_counters`` flag relaxes exactly those counters and
nothing else — physical state, recipes, and sketch must still match,
with the dedup ratio reconciled from client-side accounting instead.

Configurations cover the paper's three operating points: MLE (every
copy, one key), BTED (fixed ``t``), and FTED (blowup factor ``b``,
``t`` auto-tuned server-side every ``km_batch_size`` chunks).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import get_profile
from repro.storage.dedup import FingerprintCache
from repro.tedstore.client import TedStoreClient, UploadResult
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import GetRecipes
from repro.tedstore.provider import ProviderService

#: The paper's three operating points, smallest-knobs-first for tests.
MODES = ("mle", "bted", "fted")

_SKETCH_WIDTH = 2**16


@dataclass
class Deployment:
    """One isolated client/key-manager/provider trio."""

    mode: str
    directory: Path
    ted: TedKeyManager
    key_service: KeyManagerService
    provider_service: ProviderService
    client: TedStoreClient

    def close(self) -> None:
        self.provider_service.flush()


def make_key_manager(
    mode: str, *, rng_seed: int = 7, km_batch_size: int = 1024
) -> TedKeyManager:
    """A TED key manager at one of the paper's operating points."""
    if mode == "mle":
        # One key per content: an (effectively) infinite threshold keeps
        # the seed index at 0 for every frequency, i.e. plain MLE.
        return TedKeyManager(
            secret=b"harness", t=10**9, probabilistic=False
        )
    if mode == "bted":
        return TedKeyManager(
            secret=b"harness",
            t=5,
            sketch_width=_SKETCH_WIDTH,
            rng=random.Random(rng_seed),
        )
    if mode == "fted":
        return TedKeyManager(
            secret=b"harness",
            blowup_factor=1.05,
            batch_size=km_batch_size,
            sketch_width=_SKETCH_WIDTH,
            rng=random.Random(rng_seed),
        )
    raise ValueError(f"unknown mode: {mode!r}")


def make_deployment(
    mode: str,
    directory,
    *,
    workers: int = 1,
    pipeline_depth: int = 3,
    cache_capacity: int = 0,
    client_batch_size: int = 500,
    km_batch_size: int = 1024,
    rng_seed: int = 7,
    metadata_dedup: bool = False,
    crypto_workers: int = 0,
    key_manager_wrap=None,
    provider_wrap=None,
) -> Deployment:
    """Build one deployment rooted at ``directory``.

    ``key_manager_wrap`` / ``provider_wrap`` optionally wrap the local
    transports (fault injectors, tracing shims) before the client sees
    them — the stored-state contract must hold through them too.
    """
    directory = Path(directory)
    ted = make_key_manager(
        mode, rng_seed=rng_seed, km_batch_size=km_batch_size
    )
    key_service = KeyManagerService(ted)
    provider_service = ProviderService(directory=directory)
    key_transport = LocalKeyManager(key_service)
    provider_transport = LocalProvider(provider_service)
    if key_manager_wrap is not None:
        key_transport = key_manager_wrap(key_transport)
    if provider_wrap is not None:
        provider_transport = provider_wrap(provider_transport)
    cache = (
        FingerprintCache(capacity=cache_capacity)
        if cache_capacity > 0
        else None
    )
    client = TedStoreClient(
        key_transport,
        provider_transport,
        profile=get_profile("shactr"),
        sketch_width=_SKETCH_WIDTH,
        batch_size=client_batch_size,
        workers=workers,
        pipeline_depth=pipeline_depth,
        fingerprint_cache=cache,
        metadata_dedup=metadata_dedup,
        crypto_workers=crypto_workers,
    )
    return Deployment(
        mode=mode,
        directory=directory,
        ted=ted,
        key_service=key_service,
        provider_service=provider_service,
        client=client,
    )


def make_sharded_deployment(
    mode: str,
    directory,
    shards: int,
    *,
    ring_seed: int = 0,
    workers: int = 1,
    pipeline_depth: int = 3,
    client_batch_size: int = 500,
    km_batch_size: int = 1024,
    rng_seed: int = 7,
    key_manager_wrap=None,
    provider_wrap=None,
) -> Deployment:
    """Build an N-shard deployment rooted at ``directory``.

    ``shards == 1`` builds the plain single-engine deployment (no ring,
    today's on-disk layout) so the parity gate proves byte-compatibility
    of the N=1 path for free. For N > 1 the key manager is a
    :class:`~repro.tedstore.sharding.ShardedKeyManager` front over N
    sketch shards and the provider is ring-routed across N engines —
    ``Deployment.ted`` is the *front* key manager, so every existing
    state probe (``sketch_state``'s ``t``/requests/tracked map) reads
    the authoritative copy.
    """
    if shards == 1:
        return make_deployment(
            mode,
            directory,
            workers=workers,
            pipeline_depth=pipeline_depth,
            client_batch_size=client_batch_size,
            km_batch_size=km_batch_size,
            rng_seed=rng_seed,
            key_manager_wrap=key_manager_wrap,
            provider_wrap=provider_wrap,
        )
    from repro.tedstore.ring import HashRing
    from repro.tedstore.sharding import ShardedKeyManager

    directory = Path(directory)
    ted = make_key_manager(
        mode, rng_seed=rng_seed, km_batch_size=km_batch_size
    )
    key_service = ShardedKeyManager(
        ted, HashRing.build(shards, seed=ring_seed)
    )
    provider_service = ProviderService(
        directory=directory, shards=shards, ring_seed=ring_seed
    )
    key_transport = LocalKeyManager(key_service)
    provider_transport = LocalProvider(provider_service)
    if key_manager_wrap is not None:
        key_transport = key_manager_wrap(key_transport)
    if provider_wrap is not None:
        provider_transport = provider_wrap(provider_transport)
    client = TedStoreClient(
        key_transport,
        provider_transport,
        profile=get_profile("shactr"),
        sketch_width=_SKETCH_WIDTH,
        batch_size=client_batch_size,
        workers=workers,
        pipeline_depth=pipeline_depth,
    )
    return Deployment(
        mode=mode,
        directory=directory,
        ted=ted,
        key_service=key_service,
        provider_service=provider_service,
        client=client,
    )


def run_workload(
    deployment: Deployment, files: Sequence[Tuple[str, Sequence[bytes]]]
) -> List[UploadResult]:
    """Upload every (name, chunks) file in order."""
    return [
        deployment.client.upload_chunks(name, list(chunks))
        for name, chunks in files
    ]


def make_workload(
    *,
    files: int = 2,
    chunks_per_file: int = 1200,
    distinct_blocks: int = 40,
    block_bytes: int = 3000,
    seed: int = 1,
) -> List[Tuple[str, List[bytes]]]:
    """A deterministic duplicate-heavy workload (chunks repeat heavily)."""
    rng = random.Random(seed)
    blocks = [rng.randbytes(block_bytes) for _ in range(distinct_blocks)]
    return [
        (
            f"file-{index}",
            [
                blocks[rng.randrange(distinct_blocks)]
                for _ in range(chunks_per_file)
            ],
        )
        for index in range(files)
    ]


# -- state snapshots ----------------------------------------------------------


def provider_state(deployment: Deployment) -> Dict[str, object]:
    """Everything durable at the provider, hashed file by file."""
    deployment.provider_service.flush()
    file_hashes = {}
    for path in sorted(deployment.directory.rglob("*")):
        if path.is_file():
            parts = path.relative_to(deployment.directory).parts
            # The durable recipe store holds *sealed* blobs, and sealing
            # uses a random nonce — never byte-comparable across runs.
            # Recipe equivalence is asserted over the plaintext instead
            # (recipes_state).
            if parts[0] == "recipes":
                continue
            file_hashes["/".join(parts)] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return {
        "files": file_hashes,
        "counters": dict(deployment.provider_service.stats()),
    }


def recipes_state(
    deployment: Deployment, file_names: Sequence[str]
) -> Dict[str, Tuple[str, str]]:
    """Recipe *plaintext* digests per file.

    Sealing uses a random nonce, so the sealed bytes are never
    comparable across runs; the confidentiality-irrelevant plaintext
    (ciphertext fingerprints, sizes, per-chunk keys) is what equivalence
    is defined over. The empty sealed key recipe of the metadata-dedup
    layout hashes as the empty string on both sides.
    """
    from repro.storage.recipe import unseal

    master_key = deployment.client.master_key
    state = {}
    for name in file_names:
        recipes = deployment.provider_service.handle_get_recipes(
            GetRecipes(file_name=name)
        )
        file_plain = unseal(master_key, recipes.sealed_file_recipe)
        key_plain = (
            unseal(master_key, recipes.sealed_key_recipe)
            if recipes.sealed_key_recipe
            else b""
        )
        state[name] = (
            hashlib.sha256(file_plain).hexdigest(),
            hashlib.sha256(key_plain).hexdigest(),
        )
    return state


def sketch_state(deployment: Deployment) -> Dict[str, object]:
    """The key manager's complete tunable-dedup state."""
    ted = deployment.ted
    # .tobytes() captures every counter exactly; repr() of a large numpy
    # array elides values and would compare truncated summaries.
    counters = hashlib.sha256(
        ted.sketch._counters.tobytes()
    ).hexdigest()
    frequencies = hashlib.sha256(
        repr(sorted(ted._freq_by_identity.items())).encode()
    ).hexdigest()
    return {
        "sketch_counters": counters,
        "sketch_total": ted.sketch.total,
        "t": ted.t,
        "tracked_frequencies": frequencies,
        "requests": ted.stats.requests,
    }


# -- shard-parity probes (DESIGN.md §15) --------------------------------------
#
# A sharded deployment must be *logically* identical to the single-engine
# one: same chunks under the same cipher fingerprints (just distributed),
# same recipes, and sketch state whose per-shard pieces sum exactly to
# the single sketch. The probes below express each side in a
# placement-independent form so N=1 and N=k compare with plain ``==``.


def chunk_union_state(deployment: Deployment) -> Dict[str, str]:
    """``fingerprint-hex -> chunk digest`` union over all engine shards.

    Also asserts the routing invariant: no fingerprint may appear in two
    shards under one ring epoch (double storage would silently erode the
    dedup ratio the paper's Eq. 1 measures).
    """
    deployment.provider_service.flush()
    engine = deployment.provider_service.engine
    leaves = getattr(engine, "shard_engines", None) or [engine]
    union: Dict[str, str] = {}
    for leaf in leaves:
        for fingerprint, _location in leaf.index.items():
            key = fingerprint.hex()
            assert key not in union, (
                f"fingerprint {key} stored by two shards "
                f"({deployment.mode})"
            )
            union[key] = hashlib.sha256(
                leaf.load(fingerprint)
            ).hexdigest()
    return union


def union_sketch_state(deployment: Deployment) -> Dict[str, object]:
    """Placement-independent key-manager state.

    Single KM: exactly :func:`sketch_state`. Sharded KM: the elementwise
    *sum* of the per-shard Count-Min counter matrices — each identity is
    routed to exactly one shard, so summing reassembles the single
    sketch with no double counting, keeping Eqs. 2-4's frequency
    estimates exact. ``t``/requests/tracked map read from the front,
    which owns them.
    """
    shards = getattr(deployment.key_service, "_shards", None)
    if shards is None:
        return sketch_state(deployment)
    summed = None
    total = 0
    for shard_id in sorted(shards):
        shard_sketch = shards[shard_id].key_manager.sketch
        total += shard_sketch.total
        if summed is None:
            summed = shard_sketch._counters.copy()
        else:
            summed += shard_sketch._counters
    ted = deployment.ted
    return {
        "sketch_counters": hashlib.sha256(summed.tobytes()).hexdigest(),
        "sketch_total": total,
        "t": ted.t,
        "tracked_frequencies": hashlib.sha256(
            repr(sorted(ted._freq_by_identity.items())).encode()
        ).hexdigest(),
        "requests": ted.stats.requests,
    }


#: Provider counters that are placement artifacts, not logical state:
#: container counts differ with shard boundaries, and only sharded
#: deployments report ring membership.
_PLACEMENT_COUNTERS = ("containers", "shards", "ring_epoch")


def assert_shard_parity(
    single: Deployment,
    sharded: Deployment,
    file_names: Sequence[str],
) -> None:
    """Assert an N-shard deployment is logically identical to N=1.

    Per-fingerprint chunk bytes, recipe plaintexts, logical dedup
    counters, and the (reassembled) sketch state must all match; only
    placement artifacts (container counts, ring metadata) may differ.
    """
    assert chunk_union_state(single) == chunk_union_state(sharded), (
        f"chunk union diverged ({single.mode})"
    )
    assert recipes_state(single, file_names) == recipes_state(
        sharded, file_names
    ), f"recipes diverged ({single.mode})"
    assert union_sketch_state(single) == union_sketch_state(sharded), (
        f"sketch state diverged ({single.mode}): "
        f"{union_sketch_state(single)} != {union_sketch_state(sharded)}"
    )
    single_counters = dict(single.provider_service.stats())
    sharded_counters = dict(sharded.provider_service.stats())
    for key in _PLACEMENT_COUNTERS:
        single_counters.pop(key, None)
        sharded_counters.pop(key, None)
    assert single_counters == sharded_counters, (
        f"provider counters diverged ({single.mode}): "
        f"{single_counters} != {sharded_counters}"
    )


# -- equivalence assertion ----------------------------------------------------

#: Provider counters that legitimately shrink when the client-side
#: fingerprint cache short-circuits duplicate uploads.
_OFFERED_COUNTERS = ("logical_chunks", "logical_bytes", "duplicate_chunks")


def assert_equivalent(
    baseline: Deployment,
    candidate: Deployment,
    file_names: Sequence[str],
    baseline_results: Optional[Sequence[UploadResult]] = None,
    candidate_results: Optional[Sequence[UploadResult]] = None,
    *,
    ignore_offered_counters: bool = False,
) -> None:
    """Assert the two deployments hold bit-identical durable state.

    With ``ignore_offered_counters`` (cache-enabled candidate), offered
    chunk counters may differ at the provider; the dedup ratio is then
    reconciled from client-side accounting, which must match the
    baseline's exactly.
    """
    base_provider = provider_state(baseline)
    cand_provider = provider_state(candidate)
    assert base_provider["files"] == cand_provider["files"], (
        "provider on-disk state diverged "
        f"({baseline.mode}): {_diff_keys(base_provider['files'], cand_provider['files'])}"
    )
    base_counters = dict(base_provider["counters"])
    cand_counters = dict(cand_provider["counters"])
    if ignore_offered_counters:
        for key in _OFFERED_COUNTERS:
            base_counters.pop(key, None)
            cand_counters.pop(key, None)
    assert base_counters == cand_counters, (
        f"provider counters diverged ({baseline.mode}): "
        f"{base_counters} != {cand_counters}"
    )
    assert recipes_state(baseline, file_names) == recipes_state(
        candidate, file_names
    ), f"sealed recipes diverged ({baseline.mode})"
    assert sketch_state(baseline) == sketch_state(candidate), (
        f"key-manager sketch state diverged ({baseline.mode}): "
        f"{sketch_state(baseline)} != {sketch_state(candidate)}"
    )
    if baseline_results is not None and candidate_results is not None:
        base_acct = [
            (r.chunk_count, r.logical_bytes, r.stored_chunks,
             r.stored_chunks + r.duplicate_chunks)
            for r in baseline_results
        ]
        cand_acct = [
            (r.chunk_count, r.logical_bytes, r.stored_chunks,
             r.stored_chunks + r.duplicate_chunks)
            for r in candidate_results
        ]
        assert base_acct == cand_acct, (
            f"client-side accounting diverged ({baseline.mode}): "
            f"{base_acct} != {cand_acct}"
        )
        for result in candidate_results:
            assert (
                result.stored_chunks + result.duplicate_chunks
                == result.chunk_count
            ), f"accounting invariant broken: {result}"


def _diff_keys(a: Dict[str, str], b: Dict[str, str]) -> str:
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    changed = sorted(k for k in set(a) & set(b) if a[k] != b[k])
    return (
        f"only-baseline={only_a} only-candidate={only_b} changed={changed}"
    )


# -- multi-tenant isolation gate (DESIGN.md §13) -------------------------------
#
# With cross-user dedup *off*, every tenant owns a private dedup engine
# under ``tenants/<id>/``, so a tenant's durable bytes are a function of
# its own upload sequence alone — concurrent interleaving with other
# tenants must not change a single byte. The gate below makes that
# executable: run N tenants concurrently against one provider, run the
# same N workloads serially against N fresh single-tenant providers, and
# compare each tenant's subtree byte for byte.


def make_tenant_workloads(
    tenants: Sequence[str],
    *,
    files_per_tenant: int = 2,
    chunks_per_file: int = 400,
    shared_blocks: int = 24,
    private_blocks: int = 8,
    block_bytes: int = 2048,
    seed: int = 11,
) -> Dict[str, List[Tuple[str, List[bytes]]]]:
    """Deterministic per-tenant workloads with heavy cross-tenant overlap.

    Every tenant draws most chunks from one shared block pool (so the
    cross-user-dedup-on mode has duplicates to collapse) plus a small
    private pool (so per-tenant state is distinguishable). Each tenant's
    sequence depends only on its own name, never on the other tenants.
    """
    rng = random.Random(seed)
    shared = [rng.randbytes(block_bytes) for _ in range(shared_blocks)]
    workloads: Dict[str, List[Tuple[str, List[bytes]]]] = {}
    for tenant in tenants:
        tenant_rng = random.Random(f"{seed}:{tenant}")
        private = [
            tenant_rng.randbytes(block_bytes) for _ in range(private_blocks)
        ]
        pool = shared + private
        workloads[tenant] = [
            (
                f"{tenant}-file-{index}",
                [
                    pool[tenant_rng.randrange(len(pool))]
                    for _ in range(chunks_per_file)
                ],
            )
            for index in range(files_per_tenant)
        ]
    return workloads


def make_tenant_client(
    provider_service: ProviderService, tenant: str, *, rng_seed: int = 7
) -> TedStoreClient:
    """A serial client bound to ``tenant`` with its own key manager.

    Each tenant gets a private key-manager instance (its own sketch and
    seeds), so key derivation depends only on that tenant's upload
    sequence — a prerequisite for the byte-identical isolation gate.
    The per-tenant master key mirrors a real deployment (REED's
    per-tenant key boundary).
    """
    ted = make_key_manager("bted", rng_seed=rng_seed)
    return TedStoreClient(
        LocalKeyManager(KeyManagerService(ted)),
        LocalProvider(provider_service, tenant=tenant),
        master_key=hashlib.sha256(tenant.encode()).digest(),
        profile=get_profile("shactr"),
        sketch_width=_SKETCH_WIDTH,
        batch_size=500,
    )


def run_tenants(
    provider_service: ProviderService,
    workloads: Dict[str, List[Tuple[str, List[bytes]]]],
    *,
    concurrent: bool,
    rng_seed: int = 7,
) -> None:
    """Run every tenant's workload, in parallel threads or serially."""
    import threading

    errors: List[BaseException] = []

    def one(tenant: str) -> None:
        try:
            client = make_tenant_client(
                provider_service, tenant, rng_seed=rng_seed
            )
            for name, chunks in workloads[tenant]:
                client.upload_chunks(name, list(chunks))
        except BaseException as exc:  # surfaced to the caller
            errors.append(exc)

    if concurrent:
        threads = [
            threading.Thread(target=one, args=(tenant,))
            for tenant in workloads
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        for tenant in workloads:
            one(tenant)
    if errors:
        raise errors[0]
    provider_service.flush()


def tenant_subtree_state(root: Path) -> Dict[str, str]:
    """Hash every durable file under one tenant's storage subtree.

    The ``recipes/`` store is excluded for the same reason as in
    :func:`provider_state`: sealing uses a random nonce, so sealed bytes
    are never comparable across runs — recipe equivalence is asserted
    over plaintext digests (:func:`tenant_recipes_state`).
    """
    hashes: Dict[str, str] = {}
    for path in sorted(Path(root).rglob("*")):
        if path.is_file():
            parts = path.relative_to(root).parts
            if parts[0] == "recipes":
                continue
            hashes["/".join(parts)] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return hashes


def tenant_recipes_state(
    provider_service: ProviderService,
    tenant: str,
    file_names: Sequence[str],
) -> Dict[str, Tuple[str, str]]:
    """Per-file recipe *plaintext* digests in one tenant's namespace."""
    from repro.storage.recipe import unseal

    master_key = hashlib.sha256(tenant.encode()).digest()
    state = {}
    for name in file_names:
        recipes = provider_service.handle_get_recipes(
            GetRecipes(file_name=name), tenant=tenant
        )
        file_plain = unseal(master_key, recipes.sealed_file_recipe)
        key_plain = (
            unseal(master_key, recipes.sealed_key_recipe)
            if recipes.sealed_key_recipe
            else b""
        )
        state[name] = (
            hashlib.sha256(file_plain).hexdigest(),
            hashlib.sha256(key_plain).hexdigest(),
        )
    return state
