"""Reusable test harnesses (not collected as tests)."""
