"""Command-line interface: offline subcommands end to end."""

import hashlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["generate-trace", "--out", "/tmp/x"],
            ["analyze", "trace.trc"],
            ["tune", "trace.trc", "--b", "1.2"],
            ["upload", "file.bin"],
            ["download", "name", "--out", "o.bin"],
            ["stats", "--km", "127.0.0.1:9401", "--format", "prom"],
            ["trace", "--size-kb", "64"],
        ],
    )
    def test_subcommands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestOfflineCommands:
    def test_generate_and_analyze_and_tune(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(
            [
                "generate-trace",
                "--flavor",
                "fsl",
                "--snapshots",
                "1",
                "--scale",
                "0.05",
                "--out",
                str(out_dir),
            ]
        ) == 0
        traces = sorted(out_dir.glob("*.trc"))
        assert traces

        assert main(
            ["analyze", str(traces[0]), "--b", "1.1", "--sketch-width", "4096"]
        ) == 0
        captured = capsys.readouterr().out
        assert "MLE" in captured
        assert "FTED(b=1.1)" in captured

        assert main(["tune", str(traces[0]), "--b", "1.1"]) == 0
        captured = capsys.readouterr().out
        assert "t=" in captured

    def test_ms_flavor(self, tmp_path, capsys):
        out_dir = tmp_path / "ms"
        assert main(
            [
                "generate-trace",
                "--flavor",
                "ms",
                "--snapshots",
                "1",
                "--scale",
                "0.05",
                "--out",
                str(out_dir),
            ]
        ) == 0
        assert list(out_dir.glob("ms-*.trc"))


class TestNetworkedCommands:
    def test_upload_download_via_cli(self, tmp_path, capsys):
        # Spin servers programmatically, then drive the CLI client paths.
        from repro.core.ted import TedKeyManager
        from repro.tedstore.keymanager import KeyManagerService
        from repro.tedstore.network import serve_key_manager, serve_provider
        from repro.tedstore.provider import ProviderService

        km = KeyManagerService(
            TedKeyManager(
                secret=b"cli-secret",
                blowup_factor=1.05,
                batch_size=1000,
                sketch_width=2**14,
            )
        )
        provider = ProviderService(in_memory=True)
        source = tmp_path / "payload.bin"
        source.write_bytes(hashlib.sha256(b"cli").digest() * 2000)
        restored = tmp_path / "restored.bin"
        key_file = tmp_path / "master.key"
        key_file.write_bytes(b"cli-master-secret")

        with serve_key_manager(km) as kmh, serve_provider(provider) as prh:
            km_addr = f"{kmh.address[0]}:{kmh.address[1]}"
            pr_addr = f"{prh.address[0]}:{prh.address[1]}"
            common = [
                "--km", km_addr,
                "--provider", pr_addr,
                "--master-key", str(key_file),
                "--sketch-width", str(2**14),
                "--batch-size", "1000",
            ]
            assert main(["upload", *common, str(source), "--name", "f"]) == 0
            assert main(
                ["download", *common, "f", "--out", str(restored)]
            ) == 0

            capsys.readouterr()
            assert main(
                ["stats", "--km", km_addr, "--provider", pr_addr]
            ) == 0
            out = capsys.readouterr().out
            assert "[key_manager]" in out
            assert "[provider]" in out
            assert "requests" in out

            assert main(
                ["stats", "--km", km_addr, "--format", "prom"]
            ) == 0
            out = capsys.readouterr().out
            assert 'entity="key_manager"' in out
        assert restored.read_bytes() == source.read_bytes()

    def test_stats_requires_a_target(self, capsys):
        assert main(["stats"]) == 2


class TestFsckCommand:
    def _build_store(self, root):
        from repro.storage.dedup import DedupEngine

        engine = DedupEngine(root, container_bytes=1024)
        for i in range(10):
            chunk = bytes([i % 251]) * 400
            engine.store(hashlib.sha256(chunk).digest(), chunk)
        engine.flush()
        engine.close()

    def test_clean_store_exits_zero(self, tmp_path, capsys):
        import json

        self._build_store(tmp_path)
        assert main(["fsck", "--storage", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["bad_chunk_count"] == 0

    def test_corrupt_chunk_exits_one(self, tmp_path, capsys):
        import json

        self._build_store(tmp_path)
        victim = next((tmp_path / "containers").glob("container-*.bin"))
        blob = bytearray(victim.read_bytes())
        blob[10] ^= 0xFF  # inside the data section, past the magic
        victim.write_bytes(bytes(blob))
        assert main(["fsck", "--storage", str(tmp_path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        assert report["bad_chunk_count"] == 1

    def test_repair_restores_clean_verdict(self, tmp_path, capsys):
        self._build_store(tmp_path)
        victim = next((tmp_path / "containers").glob("container-*.bin"))
        blob = bytearray(victim.read_bytes())
        blob[10] ^= 0xFF
        victim.write_bytes(bytes(blob))
        assert main(["fsck", "--storage", str(tmp_path), "--repair"]) == 1
        out = capsys.readouterr().out
        assert "dropped" in out or "healed" in out
        # Post-repair the store serves only verified data: clean.
        assert main(["fsck", "--storage", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_prints_span_tree_and_prometheus(self, capsys):
        assert main(["trace", "--size-kb", "64"]) == 0
        out = capsys.readouterr().out
        assert "trace " in out
        assert "client.upload" in out
        assert "client.download" in out
        assert "keymanager.keygen" in out
        assert "provider.put_chunks" in out
        assert "# TYPE ted_chunking_bytes_total counter" in out
