"""Rabin fingerprinting: GF(2) math and the rolling-window property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.rabin import (
    RabinFingerprint,
    find_irreducible,
    is_irreducible,
)


class TestIrreducibility:
    @pytest.mark.parametrize(
        "poly",
        [
            0b111,  # x^2 + x + 1
            0b1011,  # x^3 + x + 1
            0b1101,  # x^3 + x^2 + 1
            0b10011,  # x^4 + x + 1
            0x11B,  # the AES polynomial, x^8+x^4+x^3+x+1
        ],
    )
    def test_known_irreducible(self, poly):
        assert is_irreducible(poly)

    @pytest.mark.parametrize(
        "poly",
        [
            0b101,  # x^2 + 1 = (x+1)^2
            0b110,  # x^2 + x = x(x+1)
            0b1001,  # x^3 + 1 = (x+1)(x^2+x+1)
            0b1111,  # x^3+x^2+x+1 = (x+1)^3? divisible by x+1 (even weight)
        ],
    )
    def test_known_reducible(self, poly):
        assert not is_irreducible(poly)

    def test_find_irreducible_deterministic(self):
        assert find_irreducible(17) == find_irreducible(17)

    def test_find_irreducible_degree(self):
        for degree in (8, 16, 31, 53):
            poly = find_irreducible(degree)
            assert poly.bit_length() - 1 == degree
            assert is_irreducible(poly)

    def test_seed_varies_polynomial(self):
        assert find_irreducible(24, seed=1) != find_irreducible(24, seed=2)

    def test_rejects_degree_below_two(self):
        with pytest.raises(ValueError):
            find_irreducible(1)


class TestRolling:
    def test_rolling_matches_reference(self):
        rf = RabinFingerprint(window_size=16)
        data = bytes(range(200))
        for byte in data:
            rf.roll(byte)
        assert rf.fingerprint == RabinFingerprint.of(
            data[-16:], rf.polynomial
        )

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=16, max_size=120))
    def test_rolling_matches_reference_property(self, data):
        rf = RabinFingerprint(window_size=16)
        for byte in data:
            rf.roll(byte)
        assert rf.fingerprint == RabinFingerprint.of(data[-16:], rf.polynomial)

    def test_window_independence(self):
        # The fingerprint depends only on the last window_size bytes.
        rf1 = RabinFingerprint(window_size=8)
        rf2 = RabinFingerprint(window_size=8)
        tail = b"same-tail"[:8]
        for byte in b"prefix-one-" + tail:
            rf1.roll(byte)
        for byte in b"another-longer-prefix-" + tail:
            rf2.roll(byte)
        assert rf1.fingerprint == rf2.fingerprint

    def test_reset(self):
        rf = RabinFingerprint(window_size=8)
        for byte in b"some data":
            rf.roll(byte)
        rf.reset()
        assert rf.fingerprint == 0
        for byte in b"abcdefgh":
            rf.roll(byte)
        fresh = RabinFingerprint(window_size=8)
        for byte in b"abcdefgh":
            fresh.roll(byte)
        assert rf.fingerprint == fresh.fingerprint

    def test_fingerprint_bounded_by_degree(self):
        rf = RabinFingerprint()
        for byte in bytes(range(256)):
            assert rf.roll(byte) < (1 << rf.degree)

    def test_default_degree_53(self):
        assert RabinFingerprint().degree == 53
