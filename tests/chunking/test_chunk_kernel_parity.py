"""Vectorized chunk-boundary kernels must cut exactly like the references.

Cut points decide chunk identity, which decides fingerprints, keys, and
ciphertexts — a one-byte divergence between the numpy scan kernels and
the per-byte reference loops (DESIGN.md §16) would change every stored
byte downstream. These tests pin the kernels to the references on
random data and on the adversarial shapes that stress the kernel
mechanics: empty/1-byte inputs, boundaries straddling the warm-up
window, and cuts landing exactly on scan-segment edges.
"""

import random

import pytest

from repro.chunking import cdc
from repro.chunking.cdc import ChunkerParams, ContentDefinedChunker
from repro.chunking.rabin import (
    DEFAULT_WINDOW_SIZE,
    RabinFingerprint,
    rolling_tables,
)
from repro.utils import kernels


def _chunks(chunker, data, enabled):
    previous = kernels.set_kernels_enabled(enabled)
    try:
        return list(chunker.chunk(data))
    finally:
        kernels.set_kernels_enabled(previous)


def _assert_parity(chunker, data):
    fast = _chunks(chunker, data, True)
    ref = _chunks(chunker, data, False)
    assert fast == ref
    assert b"".join(fast) == data


_PARAMS = [
    ChunkerParams(),
    ChunkerParams(64, 128, 256),
    # min_size 1 leaves the warm-up window nearly empty at scan start —
    # the zero-padding path of both kernels.
    ChunkerParams(1, 64, 300),
]

_ADVERSARIAL = [
    b"",
    b"x",
    b"\x00",
    b"\xff" * 4096,
    bytes(300),  # all-zero: no boundary until max_size force-cut
]


@pytest.mark.parametrize("algorithm", ["gear", "rabin"])
@pytest.mark.parametrize("params", _PARAMS)
def test_adversarial_inputs(algorithm, params):
    chunker = ContentDefinedChunker(params, algorithm=algorithm)
    for data in _ADVERSARIAL:
        _assert_parity(chunker, data)


@pytest.mark.parametrize("algorithm", ["gear", "rabin"])
def test_random_inputs(algorithm):
    rng = random.Random(17)
    chunker = ContentDefinedChunker(
        ChunkerParams(64, 128, 256), algorithm=algorithm
    )
    for size in (255, 256, 257, 5000, 50_000):
        data = bytes(rng.randrange(256) for _ in range(size))
        _assert_parity(chunker, data)
    # Shifted content: chunk boundaries must follow content, and kernel
    # and reference must agree after an insertion moves everything.
    base = bytes(rng.randrange(256) for _ in range(20_000))
    _assert_parity(chunker, base)
    _assert_parity(chunker, b"INSERTED" + base)


@pytest.mark.parametrize("algorithm", ["gear", "rabin"])
def test_window_straddling_boundaries(algorithm):
    # Scan regions sized around the kernel's segment length and the
    # rolling window: lengths that put the force-cut or the first scan
    # position within one window of a segment edge.
    rng = random.Random(23)
    window = (
        DEFAULT_WINDOW_SIZE if algorithm == "rabin" else cdc._GEAR_WINDOW
    )
    chunker = ContentDefinedChunker(
        ChunkerParams(64, 4096, 16384), algorithm=algorithm
    )
    for delta in (-window - 1, -1, 0, 1, window + 1):
        size = cdc._SEGMENT + delta
        data = bytes(rng.randrange(256) for _ in range(size))
        _assert_parity(chunker, data)


def test_small_scans_use_reference():
    # Below _MIN_KERNEL_SCAN the kernel is never entered; parity there
    # is trivially exact, and the threshold keeps numpy call overhead
    # off tiny regions. This guards the guard.
    chunker = ContentDefinedChunker(ChunkerParams(16, 32, 64))
    assert 64 - 16 < cdc._MIN_KERNEL_SCAN
    data = bytes(random.Random(3).randrange(256) for _ in range(1000))
    _assert_parity(chunker, data)


def test_rabin_tables_shared_across_instances():
    # Regression: the (shift, pop) tables were rebuilt per construction
    # (~512 modular operations each time); they are now module-cached,
    # so two fingerprints over the same (polynomial, window) alias the
    # same physical tuples.
    a = RabinFingerprint()
    b = RabinFingerprint()
    assert a._shift_table is b._shift_table
    assert a._pop_table is b._pop_table
    shift, pop = rolling_tables(a.polynomial, a.window_size)
    assert a._shift_table is shift and a._pop_table is pop


def test_shared_tables_identical_cut_points():
    rng = random.Random(29)
    data = bytes(rng.randrange(256) for _ in range(30_000))
    params = ChunkerParams(64, 128, 256)
    first = ContentDefinedChunker(params, algorithm="rabin")
    second = ContentDefinedChunker(params, algorithm="rabin")
    assert first._rabin._shift_table is second._rabin._shift_table
    assert list(first.chunk(data)) == list(second.chunk(data))
