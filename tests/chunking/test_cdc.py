"""Content-defined chunking: losslessness, bounds, shift resistance."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.cdc import ChunkerParams, ContentDefinedChunker


def _pseudo_random(size: int, seed: int = 0) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < size:
        out.extend(
            hashlib.sha256(f"{seed}:{counter}".encode()).digest()
        )
        counter += 1
    return bytes(out[:size])


_PARAMS = ChunkerParams(min_size=256, avg_size=512, max_size=1024)


class TestParams:
    def test_defaults_match_paper(self):
        params = ChunkerParams()
        assert (params.min_size, params.avg_size, params.max_size) == (
            4096,
            8192,
            16384,
        )

    @pytest.mark.parametrize(
        "mn,avg,mx",
        [(0, 8, 16), (16, 8, 16), (8, 16, 8), (4, 7, 16)],  # 7 not pow2
    )
    def test_invalid_params(self, mn, avg, mx):
        with pytest.raises(ValueError):
            ChunkerParams(min_size=mn, avg_size=avg, max_size=mx)

    def test_mask(self):
        assert ChunkerParams(4, 8, 16).mask == 7


class TestChunking:
    @pytest.mark.parametrize("algorithm", ["gear", "rabin"])
    def test_lossless(self, algorithm):
        chunker = ContentDefinedChunker(_PARAMS, algorithm=algorithm)
        data = _pseudo_random(20_000)
        assert b"".join(chunker.chunk(data)) == data

    @pytest.mark.parametrize("algorithm", ["gear", "rabin"])
    def test_size_bounds(self, algorithm):
        chunker = ContentDefinedChunker(_PARAMS, algorithm=algorithm)
        chunks = list(chunker.chunk(_pseudo_random(30_000)))
        for chunk in chunks[:-1]:
            assert _PARAMS.min_size <= len(chunk) <= _PARAMS.max_size
        assert len(chunks[-1]) <= _PARAMS.max_size

    @pytest.mark.parametrize("algorithm", ["gear", "rabin"])
    def test_deterministic(self, algorithm):
        chunker = ContentDefinedChunker(_PARAMS, algorithm=algorithm)
        data = _pseudo_random(10_000)
        assert list(chunker.chunk(data)) == list(chunker.chunk(data))

    def test_average_size_in_ballpark(self):
        chunker = ContentDefinedChunker(_PARAMS)
        sizes = chunker.chunk_sizes(_pseudo_random(200_000))
        mean = sum(sizes) / len(sizes)
        # Expected mean is between avg and min+avg; allow a generous band.
        assert 300 <= mean <= 1024

    def test_shift_resistance(self):
        # Inserting bytes early must not re-chunk the whole stream — the
        # property that makes CDC dedup-friendly.
        chunker = ContentDefinedChunker(_PARAMS)
        original = _pseudo_random(50_000)
        shifted = original[:10_000] + b"INSERTED" + original[10_000:]
        original_chunks = set(chunker.chunk(original))
        shifted_chunks = set(chunker.chunk(shifted))
        shared = len(original_chunks & shifted_chunks)
        assert shared / len(original_chunks) > 0.8

    def test_empty_input(self):
        chunker = ContentDefinedChunker(_PARAMS)
        assert list(chunker.chunk(b"")) == []

    def test_input_smaller_than_min(self):
        chunker = ContentDefinedChunker(_PARAMS)
        assert list(chunker.chunk(b"tiny")) == [b"tiny"]

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(_PARAMS, algorithm="sha-chunker")

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=5000))
    def test_lossless_property(self, data):
        chunker = ContentDefinedChunker(
            ChunkerParams(min_size=32, avg_size=64, max_size=256)
        )
        assert b"".join(chunker.chunk(data)) == data

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=3000))
    def test_gear_rabin_both_lossless(self, data):
        params = ChunkerParams(min_size=32, avg_size=64, max_size=256)
        for algorithm in ("gear", "rabin"):
            chunker = ContentDefinedChunker(params, algorithm=algorithm)
            assert b"".join(chunker.chunk(data)) == data
