"""Fixed-size chunking and trace-replay splitting."""

import pytest
from hypothesis import given, strategies as st

from repro.chunking.fixed import fixed_chunks, split_by_sizes


class TestFixedChunks:
    def test_even_split(self):
        chunks = list(fixed_chunks(b"abcdefgh", 4))
        assert chunks == [b"abcd", b"efgh"]

    def test_trailing_partial_chunk(self):
        chunks = list(fixed_chunks(b"abcdefghij", 4))
        assert chunks == [b"abcd", b"efgh", b"ij"]

    def test_empty(self):
        assert list(fixed_chunks(b"", 4)) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(fixed_chunks(b"abc", 0))

    @given(st.binary(max_size=500), st.integers(1, 64))
    def test_lossless(self, data, size):
        assert b"".join(fixed_chunks(data, size)) == data


class TestSplitBySizes:
    def test_exact_split(self):
        assert split_by_sizes(b"abcdef", [2, 3, 1]) == [b"ab", b"cde", b"f"]

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            split_by_sizes(b"abc", [2, 2])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            split_by_sizes(b"abc", [3, 0])

    @given(st.lists(st.integers(1, 20), min_size=1, max_size=20))
    def test_roundtrip(self, sizes):
        data = bytes(range(256))[: sum(sizes)]
        if len(data) < sum(sizes):
            data = (data * ((sum(sizes) // max(1, len(data))) + 1))[: sum(sizes)]
        parts = split_by_sizes(data, sizes)
        assert [len(p) for p in parts] == sizes
        assert b"".join(parts) == data
