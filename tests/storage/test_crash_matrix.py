"""Crash matrix: kill-and-recover at every storage write barrier.

For each named crash point in the container-seal and index-flush paths
(DESIGN.md §12), one parametrized case: run a dedup workload until the
injected crash fires, abandon the engine object (the process-death model),
reopen the directory — which runs startup recovery — and prove:

1. ``fsck`` reports the recovered store clean;
2. re-running the *same* workload from the start completes and every
   chunk reads back byte-identical to a never-crashed baseline;
3. the final container files are byte-identical to the baseline's —
   recovery plus deterministic re-packing converges on the clean run's
   physical layout.
"""

import hashlib
import random

import pytest

from repro.storage import crash
from repro.storage.container import ContainerStore
from repro.storage.crash import InjectedCrash
from repro.storage.dedup import DedupEngine
from repro.storage.scrub import fsck

CONTAINER_POINTS = [
    "container.seal.write",
    "container.seal.before_fsync",
    "container.seal.before_rename",
    "container.seal.before_dirsync",
    "container.seal.before_commit",
    "container.idalloc.append",
]
KVSTORE_POINTS = [
    "kvstore.wal.append",
    "kvstore.sstable.write",
    "kvstore.sstable.before_fsync",
    "kvstore.sstable.before_rename",
    "kvstore.sstable.before_dirsync",
    "kvstore.flush.before_table",
    "kvstore.flush.before_truncate",
]
#: Write-step points additionally exercised with a torn (partial) write.
TORN_POINTS = [
    "container.seal.write",
    "container.idalloc.append",
    "kvstore.wal.append",
    "kvstore.sstable.write",
]

_ENGINE_OPTS = dict(
    container_bytes=1024, kvstore_options={"memtable_bytes": 512}
)


def _workload():
    """Deterministic duplicate-heavy chunk sequence."""
    rng = random.Random(5)
    blocks = [rng.randbytes(300) for _ in range(30)]
    sequence = [blocks[rng.randrange(30)] for _ in range(80)]
    return [(hashlib.sha256(c).digest(), c) for c in sequence]


def _run_all(engine, workload):
    for fingerprint, chunk in workload:
        engine.store(fingerprint, chunk)
    engine.flush()


def _container_hashes(directory):
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in (directory / "containers").glob("container-*.bin")
    }


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """A never-crashed run: chunk bytes and container-file hashes."""
    directory = tmp_path_factory.mktemp("crash-baseline")
    workload = _workload()
    engine = DedupEngine(directory, **_ENGINE_OPTS)
    _run_all(engine, workload)
    chunks = {fp: engine.load(fp) for fp, _ in workload}
    engine.close()
    return {
        "workload": workload,
        "chunks": chunks,
        "containers": _container_hashes(directory),
    }


def _crash_and_recover(tmp_path, baseline, point, torn):
    workload = baseline["workload"]
    engine = DedupEngine(tmp_path, **_ENGINE_OPTS)
    crash.get_injector().arm(point, torn_bytes=40 if torn else None)
    with pytest.raises(InjectedCrash):
        _run_all(engine, workload)
    # Process death: the engine object is abandoned un-closed.
    recovered = DedupEngine(tmp_path, **_ENGINE_OPTS)
    report = fsck(recovered)
    assert report.clean, (
        f"post-recovery fsck dirty at {point}: {report.as_dict()}"
    )
    _run_all(recovered, workload)
    for fingerprint, _ in workload:
        assert recovered.load(fingerprint) == baseline["chunks"][fingerprint]
    assert fsck(recovered).clean
    recovered.close()
    assert _container_hashes(tmp_path) == baseline["containers"], (
        f"container layout diverged from clean run after crash at {point}"
    )


@pytest.mark.parametrize("point", CONTAINER_POINTS + KVSTORE_POINTS)
def test_kill_and_recover(tmp_path, baseline, point):
    _crash_and_recover(tmp_path, baseline, point, torn=False)


@pytest.mark.parametrize("point", TORN_POINTS)
def test_kill_and_recover_torn_write(tmp_path, baseline, point):
    _crash_and_recover(tmp_path, baseline, point, torn=True)


def test_workload_traverses_every_matrix_point(tmp_path, baseline):
    """The matrix lists real points — recording proves each is exercised."""
    injector = crash.get_injector()
    injector.start_recording()
    engine = DedupEngine(tmp_path, **_ENGINE_OPTS)
    _run_all(engine, baseline["workload"])
    engine.close()
    seen = set(injector.recorded_points())
    missing = set(CONTAINER_POINTS + KVSTORE_POINTS) - seen
    assert not missing, f"points never traversed: {sorted(missing)}"


class TestIdAllocation:
    def test_quarantined_id_never_reused(self, tmp_path):
        """A corrupt container's id stays burned after quarantine.

        If recovery reused it, stale index entries could silently resolve
        into fresh (different) ciphertext.
        """
        store = ContainerStore(tmp_path, container_bytes=256)
        store.append(b"x" * 100, b"fp-x")
        sealed = store.seal()
        store.close()
        (tmp_path / f"container-{sealed}.bin").write_bytes(b"garbage")
        reopened = ContainerStore(tmp_path, container_bytes=256)
        assert reopened.recovery.quarantined == [sealed]
        reopened.append(b"y" * 100, b"fp-y")
        assert reopened.seal() > sealed
        reopened.close()

    def test_mid_seal_crash_does_not_overwrite(self, tmp_path):
        """Crash after rename, before id commit: the id is discovered
        from disk and the sealed bytes survive the next seal."""
        store = ContainerStore(tmp_path, container_bytes=256)
        location = store.append(b"a" * 100, b"fp-a")
        crash.get_injector().arm("container.seal.before_commit")
        with pytest.raises(InjectedCrash):
            store.seal()
        reopened = ContainerStore(tmp_path, container_bytes=256)
        assert reopened.read(location) == b"a" * 100
        reopened.append(b"b" * 100, b"fp-b")
        new_id = reopened.seal()
        assert new_id == location.container_id + 1
        assert reopened.read(location) == b"a" * 100
        reopened.close()
        store.close()

    def test_torn_seal_id_is_safely_reusable(self, tmp_path):
        """A seal that dies before rename leaves nothing visible, so the
        id is reused — keeping recovered layouts identical to clean runs."""
        store = ContainerStore(tmp_path, container_bytes=256)
        store.append(b"a" * 100, b"fp-a")
        open_id = store.open_container_id
        crash.get_injector().arm("container.seal.write", torn_bytes=10)
        with pytest.raises(InjectedCrash):
            store.seal()
        reopened = ContainerStore(tmp_path, container_bytes=256)
        assert reopened.recovery.tmp_files_removed == 1
        location = reopened.append(b"a" * 100, b"fp-a")
        assert location.container_id == open_id
        reopened.close()
        store.close()
