"""Container store: packing, sealing, reads, cache."""

import pytest

from repro.storage.container import ChunkLocation, ContainerStore


@pytest.fixture
def store(tmp_path):
    return ContainerStore(tmp_path, container_bytes=256, cache_containers=2)


class TestChunkLocation:
    def test_roundtrip(self):
        loc = ChunkLocation(container_id=7, offset=123456, length=8192)
        assert ChunkLocation.from_bytes(loc.to_bytes()) == loc

    def test_fixed_width(self):
        assert len(ChunkLocation(0, 0, 0).to_bytes()) == 16

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ChunkLocation.from_bytes(b"\x00" * 15)


class TestAppendRead:
    def test_roundtrip_open_container(self, store):
        loc = store.append(b"chunk-data")
        assert store.read(loc) == b"chunk-data"

    def test_roundtrip_after_seal(self, store):
        loc = store.append(b"chunk-data")
        store.seal()
        assert store.read(loc) == b"chunk-data"

    def test_sealing_on_capacity(self, store):
        locations = [store.append(b"x" * 100) for _ in range(5)]
        # 256-byte containers hold two 100-byte chunks each.
        assert locations[0].container_id == locations[1].container_id
        assert locations[2].container_id == locations[0].container_id + 1
        assert store.container_count() >= 2

    def test_chunk_never_spans_containers(self, store):
        store.append(b"a" * 200)
        loc = store.append(b"b" * 200)
        assert loc.offset == 0  # forced into a fresh container

    def test_rejects_oversized_chunk(self, store):
        with pytest.raises(ValueError):
            store.append(b"x" * 257)

    def test_rejects_empty_chunk(self, store):
        with pytest.raises(ValueError):
            store.append(b"")

    def test_read_unknown_container(self, store):
        with pytest.raises(KeyError):
            store.read(ChunkLocation(99, 0, 4))

    def test_read_out_of_bounds(self, store):
        store.append(b"tiny")
        store.seal()
        with pytest.raises(ValueError):
            store.read(ChunkLocation(0, 0, 500))

    def test_seal_empty_returns_none(self, store):
        assert store.seal() is None


class TestAccounting:
    def test_physical_bytes(self, store):
        store.append(b"x" * 100)
        assert store.physical_bytes() == 100
        store.seal()
        store.append(b"y" * 50)
        assert store.physical_bytes() == 150

    def test_cache_hits_counted(self, store):
        loc = store.append(b"data")
        store.seal()
        store.read(loc)
        store.read(loc)
        assert store.stats["cache_hits"] >= 1
        assert store.stats["container_reads"] == 1

    def test_cache_eviction(self, store):
        locs = []
        for i in range(6):  # 3 sealed containers with cache size 2
            locs.append(store.append(bytes([i]) * 100))
        store.seal()
        for loc in locs:
            assert store.read(loc) is not None

    def test_reopen_continues_ids(self, tmp_path):
        store = ContainerStore(tmp_path, container_bytes=64)
        store.append(b"x" * 60)
        store.seal()
        reopened = ContainerStore(tmp_path, container_bytes=64)
        loc = reopened.append(b"y" * 10)
        assert loc.container_id == 1

    def test_invalid_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            ContainerStore(tmp_path, container_bytes=0)
