"""Bloom filter: no false negatives, sane false-positive rate, serde."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.bloom import BloomFilter


class TestBloom:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=16), max_size=100))
    def test_no_false_negatives(self, keys):
        bloom = BloomFilter.with_capacity(max(1, len(keys)))
        for key in keys:
            bloom.add(key)
        assert all(bloom.may_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.with_capacity(1000, false_positive_rate=0.01)
        for i in range(1000):
            bloom.add(b"member-%d" % i)
        false_positives = sum(
            bloom.may_contain(b"nonmember-%d" % i) for i in range(10_000)
        )
        assert false_positives / 10_000 < 0.05  # target 0.01, generous bound

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter.with_capacity(100)
        assert not bloom.may_contain(b"anything")

    def test_serialization_roundtrip(self):
        bloom = BloomFilter.with_capacity(50)
        for i in range(50):
            bloom.add(bytes([i]))
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert restored.num_bits == bloom.num_bits
        assert restored.num_hashes == bloom.num_hashes
        for i in range(50):
            assert restored.may_contain(bytes([i]))

    def test_from_bytes_rejects_truncation(self):
        bloom = BloomFilter.with_capacity(50)
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(bloom.to_bytes()[:-2])
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"\x00" * 3)

    @pytest.mark.parametrize("bits,hashes", [(0, 1), (8, 0), (-8, 2)])
    def test_invalid_geometry(self, bits, hashes):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=bits, num_hashes=hashes)

    def test_with_capacity_invalid_rate(self):
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(10, false_positive_rate=1.5)

    def test_with_capacity_zero_items(self):
        bloom = BloomFilter.with_capacity(0)
        bloom.add(b"k")
        assert bloom.may_contain(b"k")
