"""Look-ahead restore scheduling and fragmentation metrics."""

import random

import pytest

from repro.storage.container import ChunkLocation, ContainerStore
from repro.storage.restore import (
    FragmentationAnalyzer,
    FragmentationReport,
    LookaheadRestorer,
)


@pytest.fixture
def fragmented_store(tmp_path):
    """A store whose logical stream is scattered across many containers.

    Writes 40 chunks into small containers, then builds a restore order
    that ping-pongs between early and late containers — the fragmentation
    pattern aged snapshots exhibit.
    """
    store = ContainerStore(tmp_path, container_bytes=256, cache_containers=1)
    locations = []
    for i in range(40):
        locations.append(store.append(bytes([i]) * 100))
    store.seal()
    order = []
    for i in range(20):
        order.append(locations[i])
        order.append(locations[39 - i])
    return store, order, locations


class TestFragmentationAnalyzer:
    def test_sequential_stream(self):
        locations = [ChunkLocation(0, i * 10, 10) for i in range(10)]
        report = FragmentationAnalyzer.analyze(locations)
        assert report.containers_touched == 1
        assert report.container_switches == 0
        assert report.fragmentation_factor == 0.0

    def test_fully_fragmented_stream(self):
        locations = [ChunkLocation(i, 0, 10) for i in range(10)]
        report = FragmentationAnalyzer.analyze(locations)
        assert report.containers_touched == 10
        assert report.fragmentation_factor == 1.0

    def test_empty(self):
        report = FragmentationAnalyzer.analyze([])
        assert report == FragmentationReport(0, 0, 0, 0.0)

    def test_single_chunk(self):
        report = FragmentationAnalyzer.analyze([ChunkLocation(3, 0, 5)])
        assert report.fragmentation_factor == 0.0
        assert report.chunks_per_container == 1.0


class TestLookaheadRestorer:
    def test_correct_order_and_content(self, fragmented_store):
        store, order, _ = fragmented_store
        restorer = LookaheadRestorer(store, window_chunks=8)
        chunks = restorer.restore_all(order)
        expected = [store.read(loc) for loc in order]
        assert chunks == expected

    def test_fewer_fetches_than_naive(self, fragmented_store):
        store, order, _ = fragmented_store
        # Naive: read chunk-by-chunk through the store's 1-container cache.
        store.stats["container_reads"] = 0
        for loc in order:
            store.read(loc)
        naive_fetches = store.stats["container_reads"]

        restorer = LookaheadRestorer(store, window_chunks=len(order))
        restorer.restore_all(order)
        assert restorer.stats["container_fetches"] < naive_fetches

    def test_window_bounds_fetches(self, fragmented_store):
        store, order, _ = fragmented_store
        restorer = LookaheadRestorer(store, window_chunks=4)
        restorer.restore_all(order)
        report = FragmentationAnalyzer.analyze(order)
        # Each window fetches each needed container at most once.
        assert restorer.stats["container_fetches"] <= (
            restorer.stats["window_count"] * report.containers_touched
        )

    def test_random_access_pattern(self, fragmented_store):
        store, _, locations = fragmented_store
        rng = random.Random(5)
        order = [rng.choice(locations) for _ in range(100)]
        restorer = LookaheadRestorer(store, window_chunks=16)
        assert restorer.restore_all(order) == [
            store.read(loc) for loc in order
        ]

    def test_empty_restore(self, fragmented_store):
        store, _, _ = fragmented_store
        assert LookaheadRestorer(store).restore_all([]) == []

    def test_out_of_bounds_detected(self, fragmented_store):
        store, _, _ = fragmented_store
        restorer = LookaheadRestorer(store)
        with pytest.raises(ValueError):
            restorer.restore_all([ChunkLocation(0, 0, 10_000)])

    def test_validation(self, fragmented_store):
        store, _, _ = fragmented_store
        with pytest.raises(ValueError):
            LookaheadRestorer(store, window_chunks=0)
        with pytest.raises(ValueError):
            LookaheadRestorer(store, cache_containers=-1)

    def test_cache_persists_across_calls(self, fragmented_store):
        """A second restore of the same locations hits the cross-call
        container cache instead of refetching (the pipelined download
        path issues one restore call per GetChunks batch)."""
        store, order, _ = fragmented_store
        restorer = LookaheadRestorer(
            store, window_chunks=len(order), cache_containers=64
        )
        restorer.restore_all(order)
        first_fetches = restorer.stats["container_fetches"]
        assert restorer.restore_all(order) == [
            store.read(loc) for loc in order
        ]
        assert restorer.stats["container_fetches"] == first_fetches
        assert restorer.stats["cache_hits"] > 0

    def test_open_container_never_served_stale(self, tmp_path):
        """Appends after a restore must be visible in the next one: the
        still-open container bypasses the persistent cache."""
        store = ContainerStore(
            tmp_path, container_bytes=1 << 20, cache_containers=4
        )
        first = store.append(b"a" * 100)
        restorer = LookaheadRestorer(store, cache_containers=8)
        assert restorer.restore_all([first]) == [b"a" * 100]
        second = store.append(b"b" * 100)  # same (open) container
        assert restorer.restore_all([first, second]) == [
            b"a" * 100,
            b"b" * 100,
        ]

    def test_cache_budget_enforced(self, fragmented_store):
        store, order, _ = fragmented_store
        restorer = LookaheadRestorer(
            store, window_chunks=4, cache_containers=2
        )
        restorer.restore_all(order)
        assert len(restorer._cache) <= 2
