"""Scrub/fsck: detection, self-heal, quarantine, background passes."""

import hashlib

import pytest

from repro.storage.dedup import DedupEngine
from repro.storage.scrub import BackgroundScrubber, fsck, fsck_path


def _fill(engine, count=12, size=400):
    chunks = {}
    for i in range(count):
        chunk = bytes([i % 251]) * size
        fingerprint = hashlib.sha256(chunk).digest()
        engine.store(fingerprint, chunk)
        chunks[fingerprint] = chunk
    engine.flush()
    return chunks


def _flip_data_byte(directory, container_id, data_offset=0):
    """Corrupt one byte inside a container's data section (not the TOC)."""
    path = directory / "containers" / f"container-{container_id}.bin"
    blob = bytearray(path.read_bytes())
    blob[8 + data_offset] ^= 0xFF  # 8 = magic length
    path.write_bytes(bytes(blob))


class TestFsck:
    def test_clean_store_is_clean(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        _fill(engine)
        report = fsck(engine)
        assert report.clean
        assert report.containers_checked > 0
        assert report.chunks_verified >= 12
        assert report.index_entries_checked == 12
        engine.close()

    def test_detects_exactly_one_bad_chunk(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        _fill(engine)
        engine.close()
        _flip_data_byte(tmp_path, container_id=0)
        engine = DedupEngine(tmp_path, container_bytes=1024)
        report = fsck(engine)
        assert not report.clean
        assert len(report.bad_chunks) == 1
        assert report.bad_chunks[0].container_id == 0
        assert report.bad_chunks[0].offset == 0
        engine.close()

    def test_shallow_skips_chunk_crcs(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        _fill(engine)
        engine.close()
        _flip_data_byte(tmp_path, container_id=0)
        engine = DedupEngine(tmp_path, container_bytes=1024)
        report = fsck(engine, deep=False)
        assert report.clean  # framing intact; rot is invisible shallow
        assert report.chunks_verified == 0
        engine.close()

    def test_repair_drops_unhealable_entry(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        chunks = _fill(engine)
        engine.close()
        _flip_data_byte(tmp_path, container_id=0)
        engine = DedupEngine(tmp_path, container_bytes=1024)
        report = fsck(engine, repair=True)
        assert report.dropped == 1 and report.healed == 0
        assert report.bad_chunks[0].dropped
        # The damaged chunk now fails loudly; every other chunk survives.
        bad_fp = bytes.fromhex(report.bad_chunks[0].fingerprint)
        with pytest.raises(KeyError):
            engine.load(bad_fp)
        for fingerprint, chunk in chunks.items():
            if fingerprint != bad_fp:
                assert engine.load(fingerprint) == chunk
        assert fsck(engine).clean
        engine.close()

    def test_repair_heals_from_redundant_copy(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        chunk = b"\xabhealme" * 60
        fingerprint = hashlib.sha256(chunk).digest()
        engine.store(fingerprint, chunk)
        engine.containers.seal()
        # Plant a redundant physical copy (GC copy-forward / pre-crash
        # duplicates produce these) in a second container.
        engine.containers.append(chunk, fingerprint)
        engine.flush()
        _flip_data_byte(tmp_path, container_id=0)
        report = fsck(engine, repair=True)
        assert report.healed == 1 and report.dropped == 0
        assert report.bad_chunks[0].healed
        assert engine.load(fingerprint) == chunk
        assert fsck(engine).clean
        engine.close()

    def test_repair_quarantines_structural_damage(self, tmp_path):
        # Damage a container while the engine is open — the case startup
        # recovery cannot have handled.
        engine = DedupEngine(tmp_path, container_bytes=1024)
        _fill(engine)
        victim = engine.containers.container_ids()[0]
        path = tmp_path / "containers" / f"container-{victim}.bin"
        path.write_bytes(path.read_bytes()[:-4])  # torn trailer
        report = fsck(engine, repair=True)
        assert report.structural_errors == [victim]
        assert not path.exists()
        assert (
            tmp_path / "containers" / "quarantine" / path.name
        ).exists()
        # Entries into the quarantined container were dropped (no copy).
        assert report.dropped > 0
        assert fsck(engine).clean
        engine.close()

    def test_fsck_path_runs_recovery_first(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        _fill(engine)
        engine.close()
        report = fsck_path(tmp_path)
        assert report.clean


class TestBackgroundScrubber:
    def test_run_once_records_report(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        _fill(engine)
        scrubber = BackgroundScrubber(engine, interval_seconds=3600)
        assert scrubber.last_report is None
        report = scrubber.run_once()
        assert report.clean and scrubber.passes == 1
        assert scrubber.last_report is report
        engine.close()

    def test_thread_lifecycle(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        _fill(engine)
        scrubber = BackgroundScrubber(engine, interval_seconds=0.05)
        scrubber.start()
        scrubber.start()  # idempotent
        deadline = 100
        while scrubber.passes == 0 and deadline:
            deadline -= 1
            import time

            time.sleep(0.01)
        scrubber.stop()
        assert scrubber.passes >= 1
        assert scrubber.last_report is not None
        engine.close()

    def test_rejects_bad_interval(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        with pytest.raises(ValueError):
            BackgroundScrubber(engine, interval_seconds=0)
        engine.close()
