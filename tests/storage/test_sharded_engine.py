"""ShardedDedupEngine routing + FingerprintCache ring-epoch invalidation.

Unit coverage for the provider half of DESIGN.md §15: the ring-routed
engine must present the single-engine API while keeping every
fingerprint on exactly one shard, and the client fingerprint cache must
drop placement knowledge whenever the provider's ring epoch advances —
the in-flight alias-suppression audit (a cached "duplicate" verdict
from a pre-reshard epoch must never suppress an upload the fingerprint's
new owning shard has not seen).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.storage.dedup import FingerprintCache
from repro.storage.sharded import (
    ShardedDedupEngine,
    ShardRouteMeter,
    shard_directories,
)
from repro.tedstore.ring import HashRing


def _chunks(count: int, prefix: bytes = b"block"):
    for i in range(count):
        chunk = prefix + str(i).encode() * 9
        yield hashlib.sha256(chunk).digest(), chunk


@pytest.fixture
def engine(tmp_path):
    eng = ShardedDedupEngine(tmp_path, HashRing.build(3, seed=2))
    yield eng
    eng.close()


def test_round_trip_and_single_owner(engine, tmp_path):
    stored = dict(_chunks(60))
    for fingerprint, chunk in stored.items():
        assert engine.store(fingerprint, chunk)
    engine.flush()
    for fingerprint, chunk in stored.items():
        assert engine.contains(fingerprint)
        assert engine.load(fingerprint) == chunk
    # Routing invariant: each fingerprint lives in exactly one shard.
    seen = {}
    for leaf in engine.shard_engines:
        for fingerprint, _ in leaf.index.items():
            assert fingerprint not in seen
            seen[fingerprint] = leaf
    assert set(seen) == set(stored)
    # And physically in the shard the ring names.
    for fingerprint in stored:
        owner = engine.shard_of(fingerprint)
        assert seen[fingerprint] is engine.shard_engines[owner]


def test_duplicate_store_is_deduped(engine):
    fingerprint, chunk = next(_chunks(1))
    assert engine.store(fingerprint, chunk)
    assert not engine.store(fingerprint, chunk)
    stats = engine.stats
    assert stats.logical_chunks == 2
    assert stats.unique_chunks == 1


def test_load_many_preserves_request_order(engine):
    pairs = list(_chunks(40))
    for fingerprint, chunk in pairs:
        engine.store(fingerprint, chunk)
    engine.flush()
    order = [fp for fp, _ in reversed(pairs)]
    results = engine.load_many(order)
    assert results == [dict(pairs)[fp] for fp in order]


def test_stats_aggregate_across_shards(engine):
    for fingerprint, chunk in _chunks(30):
        engine.store(fingerprint, chunk)
    per_shard = [leaf.stats.unique_chunks for leaf in engine.shard_engines]
    assert sum(per_shard) == engine.stats.unique_chunks == 30
    assert engine.physical_bytes() > 0
    counts = engine.routed_counts()
    assert sum(counts.values()) == 30


def test_shard_directories_layout(engine, tmp_path):
    for fingerprint, chunk in _chunks(30):
        engine.store(fingerprint, chunk)
    engine.flush()
    pairs = shard_directories(tmp_path)
    assert [shard for shard, _ in pairs] == [0, 1, 2]
    for shard, path in pairs:
        assert (path / "containers").is_dir()
        assert (path / "index").is_dir()
    assert shard_directories(tmp_path / "nope") == []


def test_route_meter_tracks_imbalance():
    meter = ShardRouteMeter("test", [0, 1])
    meter.record(0, 30)
    meter.record(1, 10)
    assert meter.counts == {0: 30, 1: 10}


# -- fingerprint-cache epoch invalidation -------------------------------------


def test_epoch_advance_clears_cache():
    cache = FingerprintCache(capacity=16)
    cache.insert(b"fp1", b"seed", b"cipher1")
    cache.insert(b"fp2", b"seed", b"cipher2")
    assert cache.lookup(b"fp1", b"seed") == b"cipher1"
    invalidated = cache.advance_epoch(1)
    assert invalidated == 2
    assert len(cache) == 0
    # Bloom was rebuilt too: a pre-epoch key is a definite miss.
    assert cache.lookup(b"fp1", b"seed") is None
    stats = cache.stats()
    assert stats["epoch"] == 1
    assert stats["epoch_invalidations"] == 2


def test_same_epoch_is_noop():
    cache = FingerprintCache(capacity=16)
    cache.insert(b"fp", b"seed", b"cipher")
    assert cache.advance_epoch(0) == 0
    assert cache.lookup(b"fp", b"seed") == b"cipher"


def test_backwards_epoch_rejected():
    cache = FingerprintCache(capacity=16)
    cache.advance_epoch(3)
    with pytest.raises(ValueError, match="backwards"):
        cache.advance_epoch(2)


def test_epoch_skips_are_allowed():
    """Several reshards may happen while a client is offline."""
    cache = FingerprintCache(capacity=16)
    cache.insert(b"fp", b"seed", b"cipher")
    assert cache.advance_epoch(5) == 1
    assert cache.epoch == 5


def test_client_cache_invalidated_across_reshard(tmp_path):
    """End-to-end alias-suppression audit (cross-user dedup + reshard).

    A long-lived cached client uploads, the provider is resharded
    offline, the client reconnects and re-uploads: the pipelined path
    must consult the provider's new ring epoch, drop the stale cache,
    and the re-upload must land every fingerprint on exactly one shard
    (server-side dedup absorbs the re-PUTs; nothing is double-stored).
    """
    from repro.crypto.cipher import get_profile
    from repro.tedstore.client import TedStoreClient
    from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
    from repro.tedstore.keymanager import KeyManagerService
    from repro.tedstore.provider import ProviderService
    from repro.tedstore.reshard import reshard_provider
    from repro.core.ted import TedKeyManager

    def make_client(provider_service, cache):
        return TedStoreClient(
            LocalKeyManager(
                KeyManagerService(
                    TedKeyManager(
                        secret=b"s",
                        t=10**9,
                        probabilistic=False,
                        sketch_width=2**16,
                    )
                )
            ),
            LocalProvider(provider_service),
            profile=get_profile("shactr"),
            sketch_width=2**16,
            batch_size=64,
            fingerprint_cache=cache,
        )

    cache = FingerprintCache(capacity=1024)
    chunks = [chunk for _, chunk in _chunks(40)]

    provider = ProviderService(
        directory=tmp_path, shards=2, cross_user_dedup=True
    )
    make_client(provider, cache).upload_chunks("before", chunks)
    assert cache.epoch == 0 and len(cache) > 0
    provider.close()

    reshard_provider(tmp_path, 3)

    provider = ProviderService(directory=tmp_path)
    assert provider.ring_epoch() == 1
    result = make_client(provider, cache).upload_chunks("after", chunks)
    assert cache.epoch == 1
    assert cache.stats()["epoch_invalidations"] > 0
    # Stale entries could not short-circuit: everything was re-offered.
    assert result.cache_hits == 0
    assert result.duplicate_chunks == result.chunk_count
    # Routing invariant post-reshard: one owner per fingerprint.
    seen = set()
    for leaf in provider.engine.shard_engines:
        for fingerprint, _ in leaf.index.items():
            assert fingerprint not in seen
            seen.add(fingerprint)
    provider.close()


def test_backwards_epoch_error_is_typed_and_carries_context():
    """A stale peer must surface as RingEpochRegressionError — typed so
    fleet callers can tell "peer serves an old ring" from every other
    ValueError — while staying a ValueError for pre-§17 except blocks."""
    from repro.storage.dedup import RingEpochRegressionError

    cache = FingerprintCache(capacity=16)
    cache.advance_epoch(3)
    with pytest.raises(RingEpochRegressionError) as excinfo:
        cache.advance_epoch(1)
    assert excinfo.value.reported == 1
    assert excinfo.value.current == 3
    assert isinstance(excinfo.value, ValueError)


def test_backwards_epoch_leaves_the_cache_untouched():
    """The stale peer is wrong, not the cache: a regression must not
    invalidate entries cached under the (newer, authoritative) epoch."""
    from repro.storage.dedup import RingEpochRegressionError

    cache = FingerprintCache(capacity=16)
    cache.advance_epoch(3)
    cache.insert(b"fp", b"seed", b"cipher")
    with pytest.raises(RingEpochRegressionError):
        cache.advance_epoch(2)
    assert cache.epoch == 3
    assert len(cache) == 1
    assert cache.lookup(b"fp", b"seed") == b"cipher"
    assert cache.stats()["epoch_invalidations"] == 0


def test_forward_jump_under_concurrent_pipelined_uploads(tmp_path):
    """A reshard lands while pipelined uploads are in flight: the epoch
    advance must invalidate exactly once, post-jump uploads must rebuild
    the cache under the new epoch, and nothing may raise."""
    import threading

    from repro.core.ted import TedKeyManager
    from repro.crypto.cipher import SHACTR
    from repro.tedstore.client import TedStoreClient
    from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
    from repro.tedstore.keymanager import KeyManagerService
    from repro.tedstore.provider import ProviderService
    from repro.traces.workload import unique_file

    class EpochShiftingProvider:
        """LocalProvider plus a mutable advertised ring epoch."""

        def __init__(self, inner):
            self._inner = inner
            self.epoch = 0

        def ring_epoch(self):
            return self.epoch

        def __getattr__(self, name):
            return getattr(self._inner, name)

    service = ProviderService(in_memory=True)
    provider = EpochShiftingProvider(LocalProvider(service))
    km = LocalKeyManager(
        KeyManagerService(
            TedKeyManager(secret=b"epoch-secret", t=50, sketch_width=2**14)
        )
    )
    cache = FingerprintCache(capacity=1 << 10)
    client = TedStoreClient(
        km,
        provider,
        profile=SHACTR,
        sketch_width=2**14,
        batch_size=64,
        workers=2,  # pipelined path: that's where the epoch gate runs
        fingerprint_cache=cache,
    )
    barrier = threading.Barrier(3)
    errors = []

    def uploads(worker):
        try:
            barrier.wait(timeout=5.0)
            for i in range(4):
                client.upload(f"w{worker}-f{i}", unique_file(20_000))
        except Exception as exc:  # noqa: BLE001 - recorded for the assert
            errors.append(exc)

    threads = [
        threading.Thread(target=uploads, args=(w,)) for w in range(2)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=5.0)
    provider.epoch = 4  # reshard lands mid-run (forward jump, skips 1-3)
    for thread in threads:
        thread.join(timeout=30.0)
    assert errors == []
    assert cache.epoch == 4
    # Post-jump uploads repopulated the cache under the new epoch.
    assert len(cache) > 0
    service.close()
