"""SSTables: lookups, tombstones, sparse index, corruption detection."""

import pytest

from repro.storage.sstable import SSTable, write_sstable


def _items(n, prefix=b"key"):
    return [
        (prefix + b"-%06d" % i, b"value-%d" % i) for i in range(n)
    ]


class TestWriteRead:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.sst"
        items = _items(100)
        write_sstable(path, items)
        table = SSTable(path)
        for key, value in items:
            assert table.get(key) == (True, value)

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "t.sst"
        write_sstable(path, _items(50))
        table = SSTable(path)
        assert table.get(b"absent") == (False, None)
        assert table.get(b"key-999999") == (False, None)
        assert table.get(b"aaa") == (False, None)

    def test_tombstones_preserved(self, tmp_path):
        path = tmp_path / "t.sst"
        write_sstable(path, [(b"alive", b"v"), (b"dead", None)])
        table = SSTable(path)
        assert table.get(b"alive") == (True, b"v")
        assert table.get(b"dead") == (True, None)

    def test_empty_table(self, tmp_path):
        path = tmp_path / "t.sst"
        write_sstable(path, [])
        table = SSTable(path)
        assert table.get(b"anything") == (False, None)
        assert list(table) == []

    def test_iteration_in_key_order(self, tmp_path):
        path = tmp_path / "t.sst"
        items = _items(200)
        write_sstable(path, items)
        assert list(SSTable(path)) == items

    def test_rejects_unsorted_keys(self, tmp_path):
        with pytest.raises(ValueError):
            write_sstable(tmp_path / "t.sst", [(b"b", b"1"), (b"a", b"2")])

    def test_rejects_duplicate_keys(self, tmp_path):
        with pytest.raises(ValueError):
            write_sstable(tmp_path / "t.sst", [(b"a", b"1"), (b"a", b"2")])

    def test_sparse_index_every_interval(self, tmp_path):
        # Keys landing between index entries must still be found.
        path = tmp_path / "t.sst"
        items = _items(100)
        write_sstable(path, items, index_interval=7)
        table = SSTable(path)
        for key, value in items:
            assert table.get(key) == (True, value)

    def test_large_values(self, tmp_path):
        path = tmp_path / "t.sst"
        big = b"x" * 100_000
        write_sstable(path, [(b"big", big)])
        assert SSTable(path).get(b"big") == (True, big)

    def test_file_bytes(self, tmp_path):
        path = tmp_path / "t.sst"
        write_sstable(path, _items(10))
        assert SSTable(path).file_bytes() == path.stat().st_size

    def test_len(self, tmp_path):
        path = tmp_path / "t.sst"
        write_sstable(path, _items(37))
        assert len(SSTable(path)) == 37


class TestCorruption:
    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.sst"
        path.write_bytes(b"NOTASSTB" + b"\x00" * 100)
        with pytest.raises(ValueError):
            SSTable(path)

    def test_rejects_flipped_byte(self, tmp_path):
        path = tmp_path / "t.sst"
        write_sstable(path, _items(20))
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            SSTable(path)

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "t.sst"
        write_sstable(path, _items(20))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            SSTable(path)

    def test_rejects_tiny_file(self, tmp_path):
        path = tmp_path / "t.sst"
        path.write_bytes(b"x")
        with pytest.raises(ValueError):
            SSTable(path)
