"""Crash-point injector and the durable-write shim."""

import pytest

from repro.storage import crash
from repro.storage.crash import (
    ATOMIC_WRITE_STEPS,
    CrashInjector,
    InjectedCrash,
    atomic_write_bytes,
    atomic_write_points,
    remove_stray_tmp_files,
)


class TestInjector:
    def test_unarmed_points_are_inert(self):
        injector = CrashInjector()
        injector.fire("nothing.armed")  # must not raise

    def test_armed_point_fires_once(self):
        injector = CrashInjector()
        injector.arm("p")
        with pytest.raises(InjectedCrash) as excinfo:
            injector.fire("p")
        assert excinfo.value.point == "p"
        injector.fire("p")  # consumed: inert again

    def test_hits_counts_traversals(self):
        injector = CrashInjector()
        injector.arm("p", hits=3)
        injector.fire("p")
        injector.fire("p")
        with pytest.raises(InjectedCrash):
            injector.fire("p")

    def test_disarm_and_reset(self):
        injector = CrashInjector()
        injector.arm("p")
        injector.disarm("p")
        injector.fire("p")
        injector.arm("q")
        injector.reset()
        injector.fire("q")

    def test_armed_context_manager(self):
        injector = CrashInjector()
        with injector.armed("p"):
            with pytest.raises(InjectedCrash):
                injector.fire("p")
        injector.fire("p")

    def test_recording_discovers_points(self):
        injector = CrashInjector()
        injector.start_recording()
        injector.fire("a")
        injector.fire("b")
        injector.fire("a")
        assert injector.recorded_points() == ["a", "b", "a"]

    def test_torn_write_defaults_to_half(self):
        injector = CrashInjector()
        injector.arm("w", torn_bytes=None)
        assert injector.torn_write_bytes("w", 100) == 50

    def test_torn_write_clamps_to_payload(self):
        injector = CrashInjector()
        injector.arm("w", torn_bytes=1000)
        assert injector.torn_write_bytes("w", 10) == 10

    def test_invalid_arming_rejected(self):
        injector = CrashInjector()
        with pytest.raises(ValueError):
            injector.arm("p", hits=0)
        with pytest.raises(ValueError):
            injector.arm("p", torn_bytes=-1)


class TestAtomicWriteShim:
    def test_clean_write_publishes(self, tmp_path):
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"payload", scope="t")
        assert target.read_bytes() == b"payload"
        assert not (tmp_path / "file.bin.tmp").exists()

    def test_point_names_enumerate_the_barriers(self):
        assert atomic_write_points("s") == tuple(
            f"s.{step}" for step in ATOMIC_WRITE_STEPS
        )

    @pytest.mark.parametrize("step", ["write", "before_fsync", "before_rename"])
    def test_crash_before_rename_leaves_target_absent(self, tmp_path, step):
        target = tmp_path / "file.bin"
        crash.get_injector().arm(f"t.{step}")
        with pytest.raises(InjectedCrash):
            atomic_write_bytes(target, b"payload", scope="t")
        assert not target.exists()

    def test_crash_before_dirsync_leaves_complete_target(self, tmp_path):
        target = tmp_path / "file.bin"
        crash.get_injector().arm("t.before_dirsync")
        with pytest.raises(InjectedCrash):
            atomic_write_bytes(target, b"payload", scope="t")
        assert target.read_bytes() == b"payload"

    def test_crash_never_tears_the_visible_target(self, tmp_path):
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"old contents", scope="t")
        crash.get_injector().arm("t.write", torn_bytes=3)
        with pytest.raises(InjectedCrash):
            atomic_write_bytes(target, b"new contents!", scope="t")
        # The old file is untouched; the torn prefix sits in the temp file.
        assert target.read_bytes() == b"old contents"
        assert (tmp_path / "file.bin.tmp").read_bytes() == b"new"

    def test_remove_stray_tmp_files(self, tmp_path):
        (tmp_path / "a.tmp").write_bytes(b"x")
        (tmp_path / "b.tmp").write_bytes(b"y")
        (tmp_path / "keep.bin").write_bytes(b"z")
        assert remove_stray_tmp_files(tmp_path) == 2
        assert sorted(p.name for p in tmp_path.iterdir()) == ["keep.bin"]
