"""File/key recipes: serialization, sealing, tamper detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.recipe import FileRecipe, KeyRecipe, seal, unseal

_MASTER = b"m" * 32


class TestFileRecipe:
    def test_roundtrip(self):
        recipe = FileRecipe(file_name="backup/2026-07-06.tar")
        recipe.add(b"\x01" * 32, 8192)
        recipe.add(b"\x02" * 32, 4096)
        restored = FileRecipe.deserialize(recipe.serialize())
        assert restored.file_name == recipe.file_name
        assert restored.entries == recipe.entries

    def test_file_size(self):
        recipe = FileRecipe(file_name="f")
        recipe.add(b"a", 10)
        recipe.add(b"b", 20)
        assert recipe.file_size == 30

    def test_unicode_name(self):
        recipe = FileRecipe(file_name="资料/бэкап.bin")
        restored = FileRecipe.deserialize(recipe.serialize())
        assert restored.file_name == "资料/бэкап.bin"

    def test_empty_recipe(self):
        restored = FileRecipe.deserialize(FileRecipe(file_name="e").serialize())
        assert restored.entries == []

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            FileRecipe(file_name="f").add(b"fp", 0)

    def test_rejects_wrong_magic(self):
        with pytest.raises(ValueError):
            FileRecipe.deserialize(b"XXXXrest")

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=32), st.integers(1, 1 << 20)),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, entries):
        recipe = FileRecipe(file_name="p")
        for fp, size in entries:
            recipe.add(fp, size)
        assert FileRecipe.deserialize(recipe.serialize()).entries == entries


class TestKeyRecipe:
    def test_roundtrip(self):
        recipe = KeyRecipe()
        recipe.add(b"k1" * 16)
        recipe.add(b"k2" * 16)
        assert KeyRecipe.deserialize(recipe.serialize()).keys == recipe.keys

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            KeyRecipe().add(b"")

    def test_rejects_wrong_magic(self):
        with pytest.raises(ValueError):
            KeyRecipe.deserialize(b"XXXXrest")


class TestSealing:
    def test_seal_unseal(self):
        plaintext = b"recipe payload"
        assert unseal(_MASTER, seal(_MASTER, plaintext)) == plaintext

    def test_sealing_is_randomized(self):
        # Recipes must not deduplicate or leak equality — fresh nonce each.
        plaintext = b"identical recipes"
        assert seal(_MASTER, plaintext) != seal(_MASTER, plaintext)

    def test_wrong_key_rejected(self):
        sealed = seal(_MASTER, b"secret")
        with pytest.raises(ValueError):
            unseal(b"w" * 32, sealed)

    def test_tampering_detected(self):
        sealed = bytearray(seal(_MASTER, b"secret"))
        sealed[20] ^= 0x01
        with pytest.raises(ValueError):
            unseal(_MASTER, bytes(sealed))

    def test_truncation_detected(self):
        with pytest.raises(ValueError):
            unseal(_MASTER, b"short")

    @given(st.binary(max_size=300))
    def test_roundtrip_property(self, payload):
        assert unseal(_MASTER, seal(_MASTER, payload)) == payload

    def test_end_to_end_with_recipes(self):
        recipe = FileRecipe(file_name="f")
        recipe.add(b"fp" * 16, 1024)
        sealed = seal(_MASTER, recipe.serialize())
        restored = FileRecipe.deserialize(unseal(_MASTER, sealed))
        assert restored.entries == recipe.entries
