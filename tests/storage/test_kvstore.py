"""LSM KV store against a dict model, plus recovery and compaction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.kvstore import KVStore


@pytest.fixture
def store(tmp_path):
    s = KVStore(tmp_path, memtable_bytes=512, compaction_trigger=3)
    yield s
    s.close()


class TestBasicOps:
    def test_put_get(self, store):
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_get_missing(self, store):
        assert store.get(b"missing") is None
        assert store.get(b"missing", b"fallback") == b"fallback"

    def test_overwrite_across_flush(self, store):
        store.put(b"k", b"old")
        store.flush()
        store.put(b"k", b"new")
        assert store.get(b"k") == b"new"
        store.flush()
        assert store.get(b"k") == b"new"

    def test_delete(self, store):
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None

    def test_delete_masks_flushed_value(self, store):
        store.put(b"k", b"v")
        store.flush()
        store.delete(b"k")
        store.flush()
        assert store.get(b"k") is None

    def test_contains(self, store):
        store.put(b"k", b"v")
        assert b"k" in store
        assert b"nope" not in store

    def test_items_sorted_and_live(self, store):
        store.put(b"c", b"3")
        store.put(b"a", b"1")
        store.flush()
        store.put(b"b", b"2")
        store.delete(b"c")
        assert list(store.items()) == [(b"a", b"1"), (b"b", b"2")]

    def test_len(self, store):
        for i in range(10):
            store.put(bytes([i]), b"v")
        store.delete(bytes([0]))
        assert len(store) == 9


class TestModelConformance:
    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete"]),
                st.integers(0, 30),
                st.binary(max_size=12),
            ),
            max_size=150,
        )
    )
    def test_random_ops_match_dict(self, tmp_path_factory, ops):
        directory = tmp_path_factory.mktemp("kv")
        store = KVStore(directory, memtable_bytes=256, compaction_trigger=2)
        model = {}
        try:
            for op, key_id, value in ops:
                key = b"key-%d" % key_id
                if op == "put":
                    store.put(key, value)
                    model[key] = value
                else:
                    store.delete(key)
                    model.pop(key, None)
            for key_id in range(31):
                key = b"key-%d" % key_id
                assert store.get(key) == model.get(key)
            assert dict(store.items()) == model
        finally:
            store.close()


class TestDurability:
    def test_recovery_from_wal_without_close(self, tmp_path):
        store = KVStore(tmp_path, memtable_bytes=1 << 20)
        store.put(b"k1", b"v1")
        store.put(b"k2", b"v2")
        store.delete(b"k1")
        # No close/flush: simulate a crash; state lives only in the WAL.
        reopened = KVStore(tmp_path, memtable_bytes=1 << 20)
        assert reopened.get(b"k1") is None
        assert reopened.get(b"k2") == b"v2"
        reopened.close()

    def test_recovery_from_tables_and_wal(self, tmp_path):
        store = KVStore(tmp_path, memtable_bytes=128, compaction_trigger=10)
        reference = {}
        rng = random.Random(3)
        for i in range(200):
            key = b"k-%d" % rng.randrange(50)
            value = b"v-%d" % i
            store.put(key, value)
            reference[key] = value
        reopened = KVStore(tmp_path, memtable_bytes=128, compaction_trigger=10)
        assert dict(reopened.items()) == reference
        reopened.close()
        store.close()

    def test_close_flushes(self, tmp_path):
        store = KVStore(tmp_path)
        store.put(b"k", b"v")
        store.close()
        reopened = KVStore(tmp_path)
        assert reopened.get(b"k") == b"v"
        assert reopened.table_count() >= 1
        reopened.close()


class TestCompaction:
    def test_compaction_reduces_table_count(self, tmp_path):
        store = KVStore(tmp_path, memtable_bytes=64, compaction_trigger=3)
        for i in range(100):
            store.put(b"key-%03d" % (i % 20), b"value-%d" % i)
        assert store.stats["compactions"] >= 1
        assert store.table_count() < 3
        store.close()

    def test_compaction_preserves_latest_values(self, tmp_path):
        store = KVStore(tmp_path, memtable_bytes=64, compaction_trigger=2)
        for round_ in range(5):
            for i in range(10):
                store.put(b"k-%d" % i, b"round-%d" % round_)
            store.flush()
        for i in range(10):
            assert store.get(b"k-%d" % i) == b"round-4"
        store.close()

    def test_compaction_drops_tombstones(self, tmp_path):
        store = KVStore(tmp_path, memtable_bytes=1 << 20, compaction_trigger=100)
        store.put(b"k", b"v")
        store.flush()
        store.delete(b"k")
        store.flush()
        store.compact()
        assert store.table_count() == 1
        assert store.get(b"k") is None
        assert all(value is not None for _, value in store._tables[0])
        store.close()

    def test_explicit_compact_noop_on_single_table(self, tmp_path):
        store = KVStore(tmp_path)
        store.put(b"k", b"v")
        store.flush()
        before = store.stats["compactions"]
        store.compact()
        assert store.stats["compactions"] == before
        store.close()

    def test_disk_bytes_positive_after_flush(self, tmp_path):
        store = KVStore(tmp_path)
        store.put(b"k", b"v" * 100)
        store.flush()
        assert store.disk_bytes() > 0
        store.close()
