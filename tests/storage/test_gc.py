"""Reference counting, deletion, and container garbage collection."""

import pytest

from repro.storage.dedup import DedupEngine
from repro.storage.gc import RefcountedStore


@pytest.fixture
def store(tmp_path):
    engine = DedupEngine(tmp_path / "data", container_bytes=1024)
    s = RefcountedStore(engine, tmp_path / "refs", gc_threshold=0.5)
    yield s
    s.close()


class TestRefcounts:
    def test_put_increments(self, store):
        store.put(b"fp", b"chunk")
        assert store.refcount(b"fp") == 1
        store.put(b"fp", b"chunk")
        assert store.refcount(b"fp") == 2

    def test_duplicate_put_stores_once(self, store):
        assert store.put(b"fp", b"chunk") is True
        assert store.put(b"fp", b"chunk") is False

    def test_release(self, store):
        store.put(b"fp", b"chunk")
        store.put(b"fp", b"chunk")
        assert store.release(b"fp") == 1
        assert store.release(b"fp") == 0

    def test_release_unknown_raises(self, store):
        with pytest.raises(KeyError):
            store.release(b"nope")

    def test_over_release_raises(self, store):
        store.put(b"fp", b"chunk")
        store.release(b"fp")
        with pytest.raises(KeyError):
            store.release(b"fp")

    def test_load_live_chunk(self, store):
        store.put(b"fp", b"payload")
        assert store.load(b"fp") == b"payload"

    def test_load_released_chunk_denied(self, store):
        store.put(b"fp", b"payload")
        store.release(b"fp")
        with pytest.raises(KeyError):
            store.load(b"fp")

    def test_release_file_counts_garbage(self, store):
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.put(b"b", b"2")  # second reference
        garbage = store.release_file([b"a", b"b"])
        assert garbage == 1  # only `a` became garbage

    def test_refcounts_persist(self, tmp_path):
        engine = DedupEngine(tmp_path / "data", container_bytes=1024)
        store = RefcountedStore(engine, tmp_path / "refs")
        store.put(b"fp", b"chunk")
        store.put(b"fp", b"chunk")
        store.close()
        engine2 = DedupEngine(tmp_path / "data", container_bytes=1024)
        store2 = RefcountedStore(engine2, tmp_path / "refs")
        assert store2.refcount(b"fp") == 2
        store2.close()


class TestGarbageCollection:
    def _fill(self, store, count, size=100, prefix=b"fp"):
        fps = []
        for i in range(count):
            fp = prefix + b"-%04d" % i
            store.put(fp, bytes([i % 256]) * size)
            fps.append(fp)
        return fps

    def test_collect_reclaims_dead_containers(self, store):
        fps = self._fill(store, 30)  # ~3 containers of 10 chunks
        before = store.engine.containers.physical_bytes()
        # Delete the first 20 chunks entirely.
        store.release_file(fps[:20])
        report = store.collect()
        assert report.containers_collected >= 1
        assert report.bytes_reclaimed > 0
        after = store.engine.containers.physical_bytes()
        assert after < before
        # Survivors still load correctly.
        for fp in fps[20:]:
            assert store.load(fp)

    def test_collect_moves_live_chunks(self, store):
        fps = self._fill(store, 20)
        # Kill most chunks but keep a couple alive in each container.
        keep = set(fps[::7])
        store.release_file([fp for fp in fps if fp not in keep])
        expected = {fp: store.load(fp) for fp in keep}
        report = store.collect()
        assert report.chunks_moved >= len(keep) - 2
        for fp, payload in expected.items():
            assert store.load(fp) == payload

    def test_collect_skips_healthy_containers(self, store):
        fps = self._fill(store, 20)
        store.release(fps[0])  # tiny amount of garbage
        report = store.collect()
        assert report.containers_collected == 0

    def test_collect_idempotent(self, store):
        fps = self._fill(store, 20)
        store.release_file(fps[:15])
        store.collect()
        second = store.collect()
        assert second.containers_collected == 0
        assert second.chunks_moved == 0

    def test_dead_index_entries_removed(self, store):
        fps = self._fill(store, 20)
        store.release_file(fps)
        store.collect()
        for fp in fps:
            assert store.engine.index.get(fp) is None

    def test_dedup_after_gc_round_trip(self, store):
        # A chunk deleted and GC'd can be stored again from scratch.
        store.put(b"fp", b"reborn")
        store.release(b"fp")
        store.collect()
        assert store.put(b"fp", b"reborn") is True
        assert store.load(b"fp") == b"reborn"

    def test_threshold_validation(self, tmp_path):
        engine = DedupEngine(tmp_path / "d", container_bytes=1024)
        with pytest.raises(ValueError):
            RefcountedStore(engine, tmp_path / "r", gc_threshold=0.0)
