"""Property-based tests for metadata-chunk packing."""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.storage.metadedup import (
    _segment_entries,
    pack_metadata_chunks,
    unpack_metadata_chunks,
)
from repro.storage.recipe import FileRecipe, KeyRecipe


def _build_recipes(labels):
    file_recipe = FileRecipe(file_name="prop")
    key_recipe = KeyRecipe()
    for label in labels:
        fingerprint = hashlib.sha256(label).digest()[:20]
        file_recipe.add(fingerprint, 1 + (label[0] if label else 1))
        key_recipe.add(b"k" + fingerprint)
    return file_recipe, key_recipe


@st.composite
def label_lists(draw):
    return draw(
        st.lists(st.binary(min_size=1, max_size=8), min_size=0, max_size=120)
    )


class TestPackUnpackProperties:
    @settings(max_examples=30, deadline=None)
    @given(label_lists(), st.integers(1, 32))
    def test_roundtrip(self, labels, arity):
        file_recipe, key_recipe = _build_recipes(labels)
        chunks, meta = pack_metadata_chunks(file_recipe, key_recipe, arity)
        store = {fp: ct for fp, ct in chunks}
        restored_fr, restored_kr = unpack_metadata_chunks(
            meta, fetch=lambda fps: [store[fp] for fp in fps]
        )
        assert restored_fr.entries == file_recipe.entries
        assert restored_kr.keys == key_recipe.keys
        assert restored_fr.file_name == "prop"

    @settings(max_examples=30, deadline=None)
    @given(label_lists(), st.integers(1, 32))
    def test_deterministic_packing(self, labels, arity):
        # Identical recipes must pack to identical chunks — the dedup
        # prerequisite.
        a = pack_metadata_chunks(*_build_recipes(labels), arity)
        b = pack_metadata_chunks(*_build_recipes(labels), arity)
        assert a[0] == b[0]

    @settings(max_examples=30, deadline=None)
    @given(label_lists(), st.integers(1, 16))
    def test_segments_partition_the_stream(self, labels, arity):
        file_recipe, key_recipe = _build_recipes(labels)
        entries = [
            (fp, size, key)
            for (fp, size), key in zip(file_recipe.entries, key_recipe.keys)
        ]
        segments = _segment_entries(entries, arity)
        covered = []
        for start, end in segments:
            assert start < end
            assert end - start <= 4 * arity
            covered.extend(range(start, end))
        assert covered == list(range(len(entries)))

    @settings(max_examples=15, deadline=None)
    @given(label_lists(), st.integers(4, 16))
    def test_shared_prefix_shares_leading_chunks(self, labels, arity):
        if len(labels) < 8:
            return
        base_chunks, _ = pack_metadata_chunks(*_build_recipes(labels), arity)
        extended = labels + [b"\xffnew-tail"]
        ext_chunks, _ = pack_metadata_chunks(*_build_recipes(extended), arity)
        # All but (at most) the final segment are unchanged.
        base_fps = [fp for fp, _ in base_chunks]
        ext_fps = [fp for fp, _ in ext_chunks]
        assert ext_fps[: len(base_fps) - 1] == base_fps[:-1]
