"""Write-ahead log: replay, torn tails, corruption."""

from pathlib import Path

import pytest

from repro.storage.wal import OP_DELETE, OP_PUT, WriteAheadLog, replay_into


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "wal.log"


class TestWal:
    def test_replay_roundtrip(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"k1", b"v1")
        wal.append(OP_DELETE, b"k2")
        wal.append(OP_PUT, b"k3", b"v3")
        wal.close()
        records = list(WriteAheadLog.replay(wal_path))
        assert records == [
            (OP_PUT, b"k1", b"v1"),
            (OP_DELETE, b"k2", b""),
            (OP_PUT, b"k3", b"v3"),
        ]

    def test_replay_missing_file(self, wal_path):
        assert list(WriteAheadLog.replay(wal_path)) == []

    def test_replay_stops_at_torn_tail(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"good", b"record")
        wal.append(OP_PUT, b"torn", b"record")
        wal.close()
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-3])  # simulate a crash mid-write
        records = list(WriteAheadLog.replay(wal_path))
        assert records == [(OP_PUT, b"good", b"record")]

    def test_replay_stops_at_corrupt_crc(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"good", b"record")
        wal.append(OP_PUT, b"bad", b"record")
        wal.close()
        data = bytearray(wal_path.read_bytes())
        data[-1] ^= 0xFF
        wal_path.write_bytes(bytes(data))
        records = list(WriteAheadLog.replay(wal_path))
        assert records == [(OP_PUT, b"good", b"record")]

    def test_truncate(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"k", b"v")
        wal.truncate()
        wal.append(OP_PUT, b"k2", b"v2")
        wal.close()
        assert list(WriteAheadLog.replay(wal_path)) == [(OP_PUT, b"k2", b"v2")]

    def test_truncate_fsyncs_file_and_directory(self, wal_path, monkeypatch):
        """Regression: the close/reopen-"wb" sequence never fsynced, so a
        crash after a memtable flush could resurrect flushed records on
        replay and double-apply mutations."""
        import os as os_module

        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"flushed", b"v")
        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.storage.wal.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd))[1],
        )
        wal.truncate()
        wal.close()
        assert len(synced) >= 2  # truncated file + its directory entry

    def test_replay_after_truncate_without_close(self, wal_path):
        """Crash-simulation replay: records persisted before a truncation
        must never reappear, even if the process dies right after."""
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"applied-by-flush", b"v1")
        wal.sync()
        wal.truncate()
        # "Crash" here: replay straight from disk, no close().
        assert list(WriteAheadLog.replay(wal_path)) == []
        wal.append(OP_PUT, b"post-flush", b"v2")
        wal.close()
        assert list(WriteAheadLog.replay(wal_path)) == [
            (OP_PUT, b"post-flush", b"v2")
        ]

    def test_replay_into_after_truncate_does_not_double_apply(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"k", b"v")
        wal.truncate()  # memtable flush persisted k=v elsewhere
        state = {b"k": b"v"}  # the flushed state
        count = replay_into(
            wal_path,
            lambda k, v: state.__setitem__(k, v),
            lambda k: state.pop(k, None),
        )
        assert count == 0  # nothing re-applied
        assert state == {b"k": b"v"}

    def test_rejects_unknown_op(self, wal_path):
        wal = WriteAheadLog(wal_path)
        with pytest.raises(ValueError):
            wal.append(42, b"k")
        wal.close()

    def test_empty_key_and_value(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"", b"")
        wal.close()
        assert list(WriteAheadLog.replay(wal_path)) == [(OP_PUT, b"", b"")]

    def test_replay_into_callbacks(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"a", b"1")
        wal.append(OP_DELETE, b"a")
        wal.close()
        state = {}
        count = replay_into(
            wal_path,
            lambda k, v: state.__setitem__(k, v),
            lambda k: state.pop(k, None),
        )
        assert count == 2
        assert state == {}

    def test_sync_does_not_crash(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"k", b"v")
        wal.sync()
        wal.close()


class TestTornTailHardening:
    """Recovery must survive every artifact a crash can leave (§12)."""

    def test_every_prefix_truncation_yields_a_record_prefix(self, wal_path):
        wal = WriteAheadLog(wal_path)
        records = [(OP_PUT, b"key-%d" % i, b"value-%d" % i) for i in range(8)]
        for op, key, value in records:
            wal.append(op, key, value)
        wal.close()
        blob = wal_path.read_bytes()
        for cut in range(len(blob) + 1):
            wal_path.write_bytes(blob[:cut])
            replayed = list(WriteAheadLog.replay(wal_path))
            # Never raises, and always yields an exact record prefix.
            assert replayed == records[: len(replayed)]

    def test_zero_filled_tail_stops_replay(self, wal_path):
        # Filesystems can pre-allocate zeroed blocks; a zeroed header
        # decodes as a length-0 record whose CRC (0) matches the empty
        # payload, so it needs an explicit guard.
        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"k", b"v")
        wal.close()
        with open(wal_path, "ab") as fh:
            fh.write(b"\x00" * 64)
        assert list(WriteAheadLog.replay(wal_path)) == [(OP_PUT, b"k", b"v")]

    def test_crc_valid_garbage_payload_stops_replay(self, wal_path):
        import struct
        import zlib

        wal = WriteAheadLog(wal_path)
        wal.append(OP_PUT, b"k", b"v")
        wal.close()
        # A structurally-bogus payload with a *correct* CRC: op byte 7.
        payload = bytes([7]) + b"\xff" * 5
        with open(wal_path, "ab") as fh:
            fh.write(struct.pack("<II", zlib.crc32(payload), len(payload)))
            fh.write(payload)
        assert list(WriteAheadLog.replay(wal_path)) == [(OP_PUT, b"k", b"v")]

    def test_torn_append_crash_point(self, wal_path):
        from repro.storage import crash as crash_mod
        from repro.storage.crash import InjectedCrash

        wal = WriteAheadLog(wal_path, scope="test.wal")
        wal.append(OP_PUT, b"k1", b"v1")
        crash_mod.get_injector().arm("test.wal.append", torn_bytes=5)
        with pytest.raises(InjectedCrash):
            wal.append(OP_PUT, b"k2", b"v2")
        wal.close()
        assert list(WriteAheadLog.replay(wal_path)) == [(OP_PUT, b"k1", b"v1")]
