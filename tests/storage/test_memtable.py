"""Memtable: point ops, tombstones, sorted flush order."""

from repro.storage.memtable import MemTable


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put(b"k", b"v")
        assert table.get(b"k") == (True, b"v")

    def test_absent_vs_tombstone(self):
        table = MemTable()
        assert table.get(b"missing") == (False, None)
        table.delete(b"gone")
        assert table.get(b"gone") == (True, None)

    def test_overwrite(self):
        table = MemTable()
        table.put(b"k", b"v1")
        table.put(b"k", b"v2")
        assert table.get(b"k") == (True, b"v2")
        assert len(table) == 1

    def test_delete_then_put(self):
        table = MemTable()
        table.delete(b"k")
        table.put(b"k", b"v")
        assert table.get(b"k") == (True, b"v")

    def test_sorted_items(self):
        table = MemTable()
        for key in (b"c", b"a", b"b"):
            table.put(key, key)
        assert [k for k, _ in table.sorted_items()] == [b"a", b"b", b"c"]

    def test_sorted_items_include_tombstones(self):
        table = MemTable()
        table.put(b"a", b"1")
        table.delete(b"b")
        items = dict(table.sorted_items())
        assert items == {b"a": b"1", b"b": None}

    def test_approximate_bytes_grows(self):
        table = MemTable()
        before = table.approximate_bytes()
        table.put(b"key", b"x" * 100)
        assert table.approximate_bytes() >= before + 100

    def test_clear(self):
        table = MemTable()
        table.put(b"k", b"v")
        table.clear()
        assert table.is_empty()
        assert table.approximate_bytes() == 0

    def test_len(self):
        table = MemTable()
        table.put(b"a", b"1")
        table.delete(b"b")
        assert len(table) == 2
