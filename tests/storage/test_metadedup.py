"""Metadata deduplication (Metadedup-style recipe indirection)."""

import pytest

from repro.storage.dedup import DedupEngine
from repro.storage.metadedup import MetaDedupStore
from repro.storage.recipe import FileRecipe, KeyRecipe

_MASTER = b"m" * 32


def _fp(label) -> bytes:
    # Hash-like fingerprints, as real recipes hold — the content-defined
    # metadata segmentation keys off fingerprint bytes, so sequential
    # ASCII labels would give degenerate boundaries.
    import hashlib

    if isinstance(label, int):
        label = b"fp-%d" % label
    return hashlib.sha256(label).digest()[:20]


def _recipes(name, fingerprints):
    file_recipe = FileRecipe(file_name=name)
    key_recipe = KeyRecipe()
    for i, fp in enumerate(fingerprints):
        file_recipe.add(fp, 4096 + (i % 7) * 100)
        key_recipe.add(b"key-" + fp)
    return file_recipe, key_recipe


@pytest.fixture
def store(tmp_path):
    return MetaDedupStore(
        DedupEngine(tmp_path, container_bytes=64 << 10), entries_per_chunk=16
    )


class TestRoundtrip:
    def test_store_load(self, store):
        fps = [_fp(i) for i in range(50)]
        file_recipe, key_recipe = _recipes("backup-1", fps)
        chunks = store.store_recipes(
            "backup-1", file_recipe, key_recipe, _MASTER
        )
        assert chunks >= 1  # content-defined segmentation, ~50/16 segments
        loaded_fr, loaded_kr = store.load_recipes("backup-1", _MASTER)
        assert loaded_fr.entries == file_recipe.entries
        assert loaded_fr.file_name == "backup-1"
        assert loaded_kr.keys == key_recipe.keys

    def test_empty_recipes(self, store):
        file_recipe, key_recipe = _recipes("empty", [])
        assert store.store_recipes("empty", file_recipe, key_recipe, _MASTER) == 0
        loaded_fr, loaded_kr = store.load_recipes("empty", _MASTER)
        assert loaded_fr.entries == []
        assert loaded_kr.keys == []

    def test_unknown_file(self, store):
        with pytest.raises(KeyError):
            store.load_recipes("missing", _MASTER)

    def test_wrong_master_key(self, store):
        file_recipe, key_recipe = _recipes("f", [_fp(1)])
        store.store_recipes("f", file_recipe, key_recipe, _MASTER)
        with pytest.raises(ValueError):
            store.load_recipes("f", b"x" * 32)

    def test_mismatched_recipes_rejected(self, store):
        file_recipe, key_recipe = _recipes("f", [_fp(1), _fp(2)])
        key_recipe.keys.pop()
        with pytest.raises(ValueError):
            store.store_recipes("f", file_recipe, key_recipe, _MASTER)


class TestDeduplication:
    def test_identical_recipes_fully_dedup(self, store):
        fps = [_fp(i) for i in range(64)]
        for day in range(5):
            file_recipe, key_recipe = _recipes(f"day-{day}", fps)
            store.store_recipes(f"day-{day}", file_recipe, key_recipe, _MASTER)
        # 5 identical recipe streams → metadata chunks stored once.
        first_day_unique = store.engine.stats.unique_chunks
        assert store.engine.stats.logical_chunks == 5 * first_day_unique
        assert store.metadata_saving() > 0.7

    def test_mostly_shared_recipes_dedup_partially(self, store):
        base = [_fp(i) for i in range(64)]
        file_recipe, key_recipe = _recipes("day-0", base)
        store.store_recipes("day-0", file_recipe, key_recipe, _MASTER)
        before = store.engine.stats.unique_chunks
        # Next backup changes only the last 16-entry region.
        changed = base[:48] + [_fp(b"new-%d" % i) for i in range(16)]
        file_recipe, key_recipe = _recipes("day-1", changed)
        store.store_recipes("day-1", file_recipe, key_recipe, _MASTER)
        added = store.engine.stats.unique_chunks - before
        # Only the metadata chunks overlapping the changed tail are new;
        # content-defined boundaries keep the untouched prefix identical.
        assert added <= max(2, before // 2)
        assert added < before

    def test_different_recipes_do_not_dedup(self, store):
        a = _recipes("a", [_fp(b"a-%d" % i) for i in range(16)])
        b = _recipes("b", [_fp(b"b-%d" % i) for i in range(16)])
        store.store_recipes("a", *a, _MASTER)
        store.store_recipes("b", *b, _MASTER)
        assert store.engine.stats.unique_chunks >= 2
        assert store.metadata_saving() < 0.1

    def test_provider_only_sees_ciphertext(self, store):
        fps = [b"secret-fingerprint-%02d" % i for i in range(16)]
        file_recipe, key_recipe = _recipes("f", fps)
        store.store_recipes("f", file_recipe, key_recipe, _MASTER)
        raw = store.engine.load(
            next(iter(dict(store.engine.index.items())))
        )
        assert b"secret-fingerprint" not in raw

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            MetaDedupStore(
                DedupEngine(tmp_path, container_bytes=1024),
                entries_per_chunk=0,
            )
