"""Dedup engine: inline deduplication, stats, persistence."""

import pytest

from repro.storage.dedup import DedupEngine


@pytest.fixture
def engine(tmp_path):
    e = DedupEngine(tmp_path, container_bytes=1024)
    yield e
    e.close()


class TestDedup:
    def test_first_store_is_new(self, engine):
        assert engine.store(b"fp1", b"chunk-1") is True

    def test_duplicate_not_stored(self, engine):
        engine.store(b"fp1", b"chunk-1")
        assert engine.store(b"fp1", b"chunk-1") is False
        assert engine.stats.unique_chunks == 1
        assert engine.stats.logical_chunks == 2

    def test_load(self, engine):
        engine.store(b"fp1", b"chunk-data")
        assert engine.load(b"fp1") == b"chunk-data"

    def test_load_unknown(self, engine):
        with pytest.raises(KeyError):
            engine.load(b"nope")

    def test_contains(self, engine):
        engine.store(b"fp1", b"c")
        assert engine.contains(b"fp1")
        assert not engine.contains(b"fp2")

    def test_byte_accounting(self, engine):
        engine.store(b"a", b"x" * 100)
        engine.store(b"a", b"x" * 100)
        engine.store(b"b", b"y" * 50)
        assert engine.stats.logical_bytes == 250
        assert engine.stats.unique_bytes == 150
        assert engine.stats.dedup_ratio == pytest.approx(250 / 150)
        assert engine.stats.storage_saving == pytest.approx(1 - 150 / 250)

    def test_dedup_ratio_empty(self, engine):
        assert engine.stats.dedup_ratio == 1.0
        assert engine.stats.storage_saving == 0.0

    def test_many_chunks_across_containers(self, engine):
        for i in range(50):
            engine.store(b"fp-%d" % i, bytes([i]) * 100)
        engine.flush()
        for i in range(50):
            assert engine.load(b"fp-%d" % i) == bytes([i]) * 100
        assert engine.containers.container_count() >= 4

    def test_persistence(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        engine.store(b"fp1", b"persist-me")
        engine.close()
        reopened = DedupEngine(tmp_path, container_bytes=1024)
        assert reopened.load(b"fp1") == b"persist-me"
        assert reopened.store(b"fp1", b"persist-me") is False
        reopened.close()

    def test_physical_bytes(self, engine):
        engine.store(b"fp", b"z" * 200)
        assert engine.physical_bytes() == 200


class TestBatchLoad:
    def test_load_many_plain(self, engine):
        for i in range(30):
            engine.store(b"fp-%d" % i, bytes([i]) * 50)
        engine.flush()
        fps = [b"fp-%d" % i for i in (5, 17, 5, 29)]
        assert engine.load_many(fps) == [engine.load(fp) for fp in fps]

    def test_load_many_lookahead_matches_plain(self, engine):
        for i in range(40):
            engine.store(b"fp-%d" % i, bytes([i]) * 60)
        engine.flush()
        fps = [b"fp-%d" % (i * 7 % 40) for i in range(80)]
        plain = engine.load_many(fps)
        scheduled = engine.load_many(fps, lookahead_window=16)
        assert scheduled == plain

    def test_load_many_unknown_fingerprint(self, engine):
        with pytest.raises(KeyError):
            engine.load_many([b"nope"])

    def test_locate(self, engine):
        engine.store(b"fp", b"payload")
        location = engine.locate(b"fp")
        assert engine.containers.read(location) == b"payload"
        with pytest.raises(KeyError):
            engine.locate(b"missing")
