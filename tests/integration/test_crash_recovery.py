"""End-to-end crash recovery: a mid-upload crash converges on the clean run.

The differential claim of DESIGN.md §12: crash a provider at any storage
write barrier mid-upload, recover it, retry the workload — and the final
store is byte-identical to one that never crashed. MLE mode makes seeds
independent of key-manager frequency state, so the retried upload (fresh
client, fresh key manager) produces the same ciphertext and the container
layouts must converge exactly.
"""

import hashlib
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent))

from tests.harness.differential import make_key_manager, make_workload

from repro.crypto.cipher import get_profile
from repro.storage import crash
from repro.storage.crash import InjectedCrash
from repro.storage.scrub import fsck_path
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.provider import ProviderService

_CRASH_POINTS = [
    ("container.seal.write", 1),
    ("container.seal.before_commit", 2),
    ("kvstore.wal.append", 10),
    ("kvstore.sstable.write", 1),
]


def _deploy(directory):
    provider = ProviderService(
        directory=str(directory), container_bytes=16 << 10
    )
    client = TedStoreClient(
        LocalKeyManager(KeyManagerService(make_key_manager("mle"))),
        LocalProvider(provider),
        profile=get_profile("shactr"),
        sketch_width=2**16,
        batch_size=200,
    )
    return provider, client


def _workload():
    return make_workload(
        files=2,
        chunks_per_file=300,
        distinct_blocks=25,
        block_bytes=800,
        seed=11,
    )


def _upload_all(client, workload):
    for name, chunks in workload:
        client.upload_chunks(name, list(chunks))


def _container_hashes(directory):
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in (Path(directory) / "containers").glob("container-*.bin")
    }


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory):
    directory = tmp_path_factory.mktemp("clean-run")
    workload = _workload()
    provider, client = _deploy(directory)
    _upload_all(client, workload)
    provider.flush()
    downloads = {name: client.download(name) for name, _ in workload}
    provider.close()
    return {
        "workload": workload,
        "containers": _container_hashes(directory),
        "downloads": downloads,
    }


@pytest.mark.parametrize("point,hits", _CRASH_POINTS)
def test_crash_mid_upload_converges_on_clean_run(
    tmp_path, clean_run, point, hits
):
    workload = clean_run["workload"]
    provider, client = _deploy(tmp_path)
    crash.get_injector().arm(point, hits=hits)
    with pytest.raises(InjectedCrash):
        _upload_all(client, workload)
        provider.flush()
        # Late-firing points (flush barriers) may only trip here; either
        # way the InjectedCrash must surface, or the point never fired.
    # Provider process died; a standalone fsck of the surviving
    # directory — which runs startup recovery first — must come up clean.
    report = fsck_path(tmp_path)
    assert report.clean, f"fsck dirty after crash at {point}"
    # Restart (fresh provider AND key manager) and retry the workload.
    provider2, client2 = _deploy(tmp_path)
    _upload_all(client2, workload)
    provider2.flush()
    assert _container_hashes(tmp_path) == clean_run["containers"], (
        f"container layout diverged from the clean run (crash at {point})"
    )
    for name, _ in workload:
        assert client2.download(name) == clean_run["downloads"][name]
    assert fsck_path(tmp_path).clean
    provider2.close()


def test_recipes_survive_provider_restart(tmp_path):
    workload = _workload()
    provider, client = _deploy(tmp_path)
    _upload_all(client, workload)
    expected = {name: client.download(name) for name, _ in workload}
    provider.flush()
    provider.close()
    # A fresh provider on the same directory must serve every file —
    # recipes are durable, not session state.
    provider2, client2 = _deploy(tmp_path)
    for name, _ in workload:
        assert client2.download(name) == expected[name]
    provider2.close()
