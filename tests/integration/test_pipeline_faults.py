"""Pipelined upload path under faults and concurrency stress.

The pipeline's consistency contract (DESIGN.md §10) must hold when the
world misbehaves: a provider crash mid-upload, injected transport delays
jittering thread interleavings, and injected hard faults that must
surface promptly as a :class:`~repro.tedstore.pipeline.PipelineError`
instead of deadlocking the stage queues.
"""

import random
import threading
import time

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.obs import tracing
from repro.storage.dedup import FingerprintCache
from repro.tedstore.client import TedStoreClient
from repro.tedstore.faults import (
    FaultPlan,
    FaultyKeyManager,
    FaultyProvider,
    InjectedFault,
)
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.network import (
    RemoteKeyManager,
    RemoteProvider,
    serve_key_manager,
    serve_provider,
)
from repro.tedstore.pipeline import PipelineError
from repro.tedstore.provider import ProviderService
from repro.tedstore.retry import RetryPolicy
from repro.traces.workload import unique_file

from tests.harness.differential import (
    assert_equivalent,
    make_deployment,
    make_workload,
    run_workload,
)

_W = 2**14
_FAST_RETRY = dict(base_delay=0.01, multiplier=2.0, max_delay=0.1)

WORKLOAD = make_workload(files=2, chunks_per_file=800, seed=23)
FILE_NAMES = [name for name, _ in WORKLOAD]


@pytest.fixture
def recorder():
    """Install a fresh tracer + recorder, restore the old one afterwards."""
    previous = tracing.get_tracer()
    recorder = tracing.SpanRecorder()
    tracing.set_tracer(tracing.Tracer(recorder=recorder))
    yield recorder
    tracing.set_tracer(previous)


def _key_manager_service():
    return KeyManagerService(
        TedKeyManager(
            secret=b"pipeline-faults",
            blowup_factor=1.05,
            batch_size=500,
            sketch_width=_W,
            rng=random.Random(5),
        )
    )


class _KillAndRestartOnce:
    """Provider wrapper that crashes+restarts the server before one call."""

    def __init__(self, inner, restart, after_calls: int = 2) -> None:
        self._inner = inner
        self._restart = restart
        self._calls = 0
        self._after = after_calls
        self.fired = False

    def put_chunks(self, request):
        self._calls += 1
        if not self.fired and self._calls > self._after:
            self.fired = True
            self._restart()
        return self._inner.put_chunks(request)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestProviderCrashMidPipeline:
    def test_pipelined_upload_survives_provider_restart(self, recorder):
        """Kill the provider while the pipeline has stages in flight; the
        uploader thread's retries must recover without losing or
        duplicating a single chunk — and be visible as span events."""
        km_service = _key_manager_service()
        provider_service = ProviderService(in_memory=True)
        km_handle = serve_key_manager(km_service)
        prov_handle = serve_provider(provider_service)
        handles = {"provider": prov_handle}

        def restart_provider():
            port = handles["provider"].address[1]
            handles["provider"].kill()  # hard stop: connections die
            handles["provider"] = serve_provider(
                provider_service, port=port
            )

        km = RemoteKeyManager(km_handle.address)
        raw_provider = RemoteProvider(
            prov_handle.address,
            retry_policy=RetryPolicy(max_attempts=6, **_FAST_RETRY),
            data_connections=2,
        )
        provider = _KillAndRestartOnce(raw_provider, restart_provider)
        client = TedStoreClient(
            km,
            provider,
            profile=SHACTR,
            sketch_width=_W,
            batch_size=8,  # many small PUT batches → crash lands mid-stream
            workers=3,
            pipeline_depth=2,
            fingerprint_cache=FingerprintCache(capacity=4096),
        )
        try:
            data = unique_file(400_000)
            result = client.upload("crash-file", data)
            assert provider.fired  # the crash really happened mid-upload
            assert result.chunk_count > 0
            assert (
                result.stored_chunks + result.duplicate_chunks
                == result.chunk_count
            )
            assert client.download("crash-file") == data

            wire = raw_provider.wire_stats()
            assert wire["client_retries"] >= 1
            assert wire["client_reconnects"] >= 1

            # The recovery is visible in the trace: some rpc span under
            # this upload carries a wire.retry event.
            events = [
                name
                for span in recorder.spans()
                for name in span.event_names()
            ]
            assert "wire.retry" in events
            span_names = {span.name for span in recorder.spans()}
            assert "client.pipeline" in span_names
        finally:
            km.close()
            raw_provider.close()
            km_handle.stop()
            handles["provider"].stop()


class TestInjectedFaults:
    def test_delay_faults_jitter_interleavings_not_state(self, tmp_path):
        """Injected delays reorder thread wakeups, never stored bytes:
        the delayed pipelined run must stay bit-identical to a clean
        serial run."""
        delay_plan = FaultPlan(
            delay_rate=0.3, delay_seconds=0.002, seed=42
        )
        serial = make_deployment("fted", tmp_path / "serial", workers=1)
        jittered = make_deployment(
            "fted",
            tmp_path / "jittered",
            workers=4,
            pipeline_depth=2,
            client_batch_size=200,
            key_manager_wrap=lambda t: FaultyKeyManager(t, delay_plan),
            provider_wrap=lambda t: FaultyProvider(t, delay_plan),
        )
        serial_results = run_workload(serial, WORKLOAD)
        jitter_results = run_workload(jittered, WORKLOAD)
        serial.close()
        jittered.close()
        assert_equivalent(
            serial, jittered, FILE_NAMES, serial_results, jitter_results
        )
        counters = jittered.client.provider.fault_counters
        assert counters["delays"] > 0  # the faults really fired

    def test_hard_fault_fails_fast_without_deadlock(self, tmp_path):
        """A drop fault anywhere in the pipeline must surface as a
        PipelineError promptly — bounded queues and a dead stage must
        never leave the caller blocked."""
        drop_plan = FaultPlan(drop_rate=1.0, seed=1)
        deployment = make_deployment(
            "fted",
            tmp_path,
            workers=3,
            pipeline_depth=2,
            client_batch_size=100,
            provider_wrap=lambda t: FaultyProvider(t, drop_plan),
        )
        started = time.monotonic()
        with pytest.raises(PipelineError) as excinfo:
            deployment.client.upload_chunks("doomed", WORKLOAD[0][1])
        assert time.monotonic() - started < 30.0
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        # All pipeline threads unwound with the failure.
        lingering = [
            t
            for t in threading.enumerate()
            if t.name.startswith("ted-pipeline")
        ]
        for thread in lingering:
            thread.join(timeout=5.0)
        assert not any(
            t.is_alive()
            for t in threading.enumerate()
            if t.name.startswith("ted-pipeline")
        )

    def test_keygen_fault_fails_fast(self, tmp_path):
        """Same, when the key-manager stage dies instead of the uploader."""
        drop_plan = FaultPlan(drop_rate=1.0, seed=2)
        deployment = make_deployment(
            "fted",
            tmp_path,
            workers=2,
            key_manager_wrap=lambda t: FaultyKeyManager(t, drop_plan),
        )
        with pytest.raises(PipelineError) as excinfo:
            deployment.client.upload_chunks("doomed", WORKLOAD[0][1])
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_failed_upload_leaves_client_reusable(self, tmp_path):
        """After a pipeline failure the same client must complete the
        next upload (fresh uploader instance, no poisoned state)."""
        plans = iter(
            [FaultPlan(drop_rate=1.0, seed=3), FaultPlan(seed=3)]
        )

        class _SwappableFaults:
            def __init__(self, inner):
                self.wrapped = FaultyProvider(inner, next(plans))
                self._inner = inner

            def rearm(self):
                self.wrapped = FaultyProvider(self._inner, next(plans))

            def __getattr__(self, name):
                return getattr(self.wrapped, name)

        holder = {}

        def wrap(t):
            holder["provider"] = _SwappableFaults(t)
            return holder["provider"]

        deployment = make_deployment(
            "fted", tmp_path, workers=3, provider_wrap=wrap
        )
        name, chunks = WORKLOAD[0]
        with pytest.raises(PipelineError):
            deployment.client.upload_chunks(name, chunks)
        holder["provider"].rearm()  # same client, faults healed
        result = deployment.client.upload_chunks(name, chunks)
        assert (
            result.stored_chunks + result.duplicate_chunks
            == result.chunk_count
        )
        assert deployment.client.download(name) == b"".join(chunks)
