"""Cross-module integration: trace → TEDStore → deduplicated storage.

These tests tie the whole system together: the storage blowup the provider
*actually realizes on disk* must agree with what the trade-off simulation
predicts, and restores must be byte-perfect after dedup, containers, LSM
flushes, and recipe sealing all do their thing.
"""

import random

import pytest

from repro.core.schemes import TedScheme
from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.provider import ProviderService
from repro.traces.workload import snapshot_to_chunks

_W = 2**14


def _stack(tmp_path, t=None, b=None, batch_size=4000):
    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"e2e-secret",
            t=t,
            blowup_factor=b,
            batch_size=batch_size if b else None,
            sketch_width=_W,
            rng=random.Random(1),
        )
    )
    provider = ProviderService(
        directory=str(tmp_path), container_bytes=256 << 10
    )
    client = TedStoreClient(
        LocalKeyManager(key_manager),
        LocalProvider(provider),
        profile=SHACTR,
        sketch_width=_W,
        batch_size=2000,
    )
    return client, provider, key_manager


@pytest.fixture(scope="module")
def small_records(request):
    # A trimmed snapshot keeps end-to-end uploads fast while still crossing
    # container and memtable boundaries many times.
    snapshot = request.getfixturevalue("snapshot_small")
    from repro.traces.model import Snapshot

    return Snapshot(
        snapshot_id=snapshot.snapshot_id, records=snapshot.records[:1200]
    )


class TestTraceToStorage:
    def test_restore_is_byte_perfect(self, tmp_path, small_records):
        client, provider, _ = _stack(tmp_path, t=10)
        chunks = [c for _, c in snapshot_to_chunks(small_records)]
        client.upload_chunks("snap", chunks)
        provider.flush()
        assert client.download("snap") == b"".join(chunks)

    def test_actual_storage_blowup_matches_simulation(
        self, tmp_path, small_records
    ):
        # Run the same snapshot through (a) the trace-driven scheme
        # simulation and (b) the real TEDStore stack, with identical key
        # manager settings, and compare unique-chunk counts.
        t = 10
        sim = TedScheme(
            TedKeyManager(
                secret=b"e2e-secret",
                t=t,
                sketch_width=_W,
                rng=random.Random(2),
            )
        ).process(small_records.records)

        client, provider, _ = _stack(tmp_path, t=t)
        chunks = [c for _, c in snapshot_to_chunks(small_records)]
        client.upload_chunks("snap", chunks)
        stats = provider.engine.stats
        assert stats.logical_chunks == len(small_records)

        real_blowup = stats.unique_chunks / small_records.unique_chunks
        sim_blowup = sim.blowup()
        assert real_blowup == pytest.approx(sim_blowup, rel=0.05)

    def test_fted_blowup_bounded_on_disk(self, tmp_path, small_records):
        client, provider, key_manager = _stack(
            tmp_path, b=1.1, batch_size=500
        )
        chunks = [c for _, c in snapshot_to_chunks(small_records)]
        client.upload_chunks("snap", chunks)
        stats = provider.engine.stats
        blowup = stats.unique_chunks / small_records.unique_chunks
        # Batched FTED starts at t = 1, so allow cold-start overshoot — but
        # it must stay well below SKE's blowup (the dedup ratio).
        assert blowup < small_records.dedup_ratio * 0.8
        assert key_manager.key_manager.stats.batches_tuned >= 1

    def test_cross_snapshot_series_dedups(self, tmp_path, snapshot_series):
        client, provider, _ = _stack(tmp_path, t=10_000)
        logical = 0
        for snapshot in snapshot_series[:3]:
            chunks = [c for _, c in snapshot_to_chunks(snapshot)]
            client.upload_chunks(snapshot.snapshot_id, chunks)
            logical += len(chunks)
        stats = provider.engine.stats
        # Consecutive snapshots share most content → strong cross dedup.
        assert stats.unique_chunks < logical * 0.7
        # And every snapshot still restores byte-perfectly.
        for snapshot in snapshot_series[:3]:
            expected = b"".join(c for _, c in snapshot_to_chunks(snapshot))
            assert client.download(snapshot.snapshot_id) == expected

    def test_provider_restart_preserves_everything(
        self, tmp_path, small_records
    ):
        client, provider, _ = _stack(tmp_path, t=10)
        chunks = [c for _, c in snapshot_to_chunks(small_records)][:500]
        client.upload_chunks("snap", chunks)
        provider.flush()
        # Recipes live outside the engine, in the tenant namespace.
        recipes = dict(provider._tenant("default").recipes)

        # Simulate a provider restart on the same directory.
        from repro.storage.dedup import DedupEngine

        provider.engine.close()
        reopened = ProviderService(
            engine=DedupEngine(tmp_path, container_bytes=256 << 10)
        )
        reopened._tenant("default").recipes.update(recipes)
        client2 = TedStoreClient(
            client.key_manager,
            LocalProvider(reopened),
            profile=SHACTR,
            sketch_width=_W,
            batch_size=2000,
        )
        assert client2.download("snap") == b"".join(chunks)
