"""Differential tenant-isolation gate (DESIGN.md §13).

Two executable claims about the multi-tenant provider:

* **Cross-user dedup off** — each tenant's durable state (containers +
  fingerprint index under ``tenants/<id>/``) is a function of that
  tenant's upload sequence alone: N tenants uploading *concurrently*
  against one provider produce byte-identical per-tenant subtrees to N
  *serial* single-tenant runs against fresh providers.
* **Cross-user dedup on** — overlapping data across tenants collapses
  (shared ``unique_chunks`` drops below the partitioned total) while
  per-tenant recipes are unchanged: sharing ciphertext chunks never
  rewrites a tenant's metadata (REED's per-tenant key/recipe boundary).
"""

from __future__ import annotations

import pytest

from repro.tedstore.provider import ProviderService

from tests.harness.differential import (
    make_tenant_workloads,
    run_tenants,
    tenant_recipes_state,
    tenant_subtree_state,
)

TENANTS = ("alpha", "bravo", "charlie", "delta")


@pytest.fixture(scope="module")
def workloads():
    return make_tenant_workloads(TENANTS)


def _file_names(workloads, tenant):
    return [name for name, _ in workloads[tenant]]


class TestIsolationGate:
    def test_concurrent_matches_serial_per_tenant(self, tmp_path, workloads):
        # Concurrent: one partitioned provider, all tenants in parallel.
        concurrent_root = tmp_path / "concurrent"
        concurrent = ProviderService(
            directory=concurrent_root, cross_user_dedup=False
        )
        try:
            run_tenants(concurrent, workloads, concurrent=True)
            concurrent_state = {
                tenant: tenant_subtree_state(
                    concurrent_root / "tenants" / tenant
                )
                for tenant in TENANTS
            }
            concurrent_recipes = {
                tenant: tenant_recipes_state(
                    concurrent, tenant, _file_names(workloads, tenant)
                )
                for tenant in TENANTS
            }
        finally:
            concurrent.close()

        # Serial: each tenant alone against a fresh provider.
        for tenant in TENANTS:
            serial_root = tmp_path / f"serial-{tenant}"
            serial = ProviderService(
                directory=serial_root, cross_user_dedup=False
            )
            try:
                run_tenants(
                    serial, {tenant: workloads[tenant]}, concurrent=False
                )
                serial_state = tenant_subtree_state(
                    serial_root / "tenants" / tenant
                )
                serial_recipes = tenant_recipes_state(
                    serial, tenant, _file_names(workloads, tenant)
                )
            finally:
                serial.close()
            assert concurrent_state[tenant] == serial_state, (
                f"tenant {tenant}: concurrent per-tenant bytes diverged "
                f"from the serial single-tenant run"
            )
            assert concurrent_recipes[tenant] == serial_recipes, (
                f"tenant {tenant}: recipe plaintext diverged"
            )

    def test_partitioned_tenants_never_cross_dedup(self, tmp_path, workloads):
        provider = ProviderService(
            directory=tmp_path / "p", cross_user_dedup=False
        )
        try:
            run_tenants(provider, workloads, concurrent=True)
            # Identical shared blocks were uploaded by every tenant; with
            # partitioned indexes each tenant stores its own copy, so the
            # aggregate unique count is (roughly) additive — nothing
            # deduplicated across the tenant boundary.
            per_tenant_unique = []
            for tenant in TENANTS:
                stats = dict(provider.tenant_stats(tenant))
                assert stats["stored_chunks"] > 0
                per_tenant_unique.append(stats["stored_chunks"])
            total = dict(provider.stats())
            assert total["unique_chunks"] == sum(per_tenant_unique)
        finally:
            provider.close()

    def test_cross_user_dedup_collapses_shared_chunks(
        self, tmp_path, workloads
    ):
        partitioned = ProviderService(
            directory=tmp_path / "off", cross_user_dedup=False
        )
        shared = ProviderService(
            directory=tmp_path / "on", cross_user_dedup=True
        )
        try:
            run_tenants(partitioned, workloads, concurrent=False)
            run_tenants(shared, workloads, concurrent=False)
            off_unique = dict(partitioned.stats())["unique_chunks"]
            on_unique = dict(shared.stats())["unique_chunks"]
            # The workloads draw mostly from one shared block pool, so
            # sharing the fingerprint index must strictly reduce the
            # stored-unique count.
            assert on_unique < off_unique
            # ... while per-tenant recipes/keys are byte-for-byte the
            # same plaintext in both modes: chunk sharing never touches
            # tenant metadata.
            for tenant in TENANTS:
                names = _file_names(workloads, tenant)
                assert tenant_recipes_state(
                    partitioned, tenant, names
                ) == tenant_recipes_state(shared, tenant, names)
        finally:
            partitioned.close()
            shared.close()
