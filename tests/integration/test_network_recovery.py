"""Wire-path recovery: reconnects, deadlines, idle timeouts, load shedding.

These tests exercise the robustness layer over real TCP sockets: a client
must finish an upload across a provider crash/restart, give up promptly on
a stalled peer, transparently reconnect after an idle-timeout disconnect,
and back off when the server sheds load.
"""

import random
import socket
import threading
import time

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.tedstore.client import TedStoreClient
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import PutChunks
from repro.tedstore.network import (
    RemoteKeyManager,
    RemoteProvider,
    _Connection,
    serve_key_manager,
    serve_provider,
)
from repro.tedstore.provider import ProviderService
from repro.tedstore.retry import (
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
)
from repro.tedstore import messages as m
from repro.traces.workload import unique_file

_W = 2**14

# Tight backoff so recovery tests run in milliseconds of real time.
_FAST_RETRY = dict(base_delay=0.01, multiplier=2.0, max_delay=0.1)


def _key_manager_service():
    return KeyManagerService(
        TedKeyManager(
            secret=b"recovery-secret",
            blowup_factor=1.05,
            batch_size=500,
            sketch_width=_W,
            rng=random.Random(5),
        )
    )


class _KillAndRestartOnce:
    """Provider wrapper that crashes+restarts the server before one call."""

    def __init__(self, inner: RemoteProvider, restart) -> None:
        self._inner = inner
        self._restart = restart
        self.fired = False

    def put_chunks(self, request):
        if not self.fired:
            self.fired = True
            self._restart()
        return self._inner.put_chunks(request)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestProviderCrashRecovery:
    def test_upload_completes_across_provider_restart(self):
        """Acceptance: kill the provider mid-upload; the client reconnects,
        retries, and completes — with the recovery visible in counters."""
        km_service = _key_manager_service()
        provider_service = ProviderService(in_memory=True)
        km_handle = serve_key_manager(km_service)
        prov_handle = serve_provider(provider_service)
        handles = {"provider": prov_handle}

        def restart_provider():
            port = handles["provider"].address[1]
            handles["provider"].kill()  # hard stop: connections die
            handles["provider"] = serve_provider(
                provider_service, port=port
            )

        km = RemoteKeyManager(km_handle.address)
        raw_provider = RemoteProvider(
            prov_handle.address,
            retry_policy=RetryPolicy(max_attempts=6, **_FAST_RETRY),
        )
        provider = _KillAndRestartOnce(raw_provider, restart_provider)
        client = TedStoreClient(
            km,
            provider,
            profile=SHACTR,
            sketch_width=_W,
            batch_size=200,
        )
        try:
            data = unique_file(60_000)
            result = client.upload("crash-file", data)
            assert provider.fired  # the crash really happened mid-upload
            assert result.chunk_count > 0
            assert client.download("crash-file") == data

            wire = raw_provider.wire_stats()
            assert wire["client_retries"] >= 1
            assert wire["client_reconnects"] >= 1

            # The same counters ride the stats message end to end.
            merged = client.transport_stats()["provider"]
            assert merged["client_retries"] >= 1
            assert merged["client_reconnects"] >= 1
            assert "server_connections" in merged
        finally:
            km.close()
            raw_provider.close()
            km_handle.stop()
            handles["provider"].stop()


class TestDeadlines:
    def test_stalled_peer_hits_deadline(self):
        """A server that accepts but never replies must not hang the
        client past its per-call deadline."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        held = []

        def hold_connections():
            try:
                while True:
                    conn, _ = listener.accept()
                    held.append(conn)  # never reply, never close
            except OSError:
                return

        thread = threading.Thread(target=hold_connections, daemon=True)
        thread.start()
        provider = RemoteProvider(
            listener.getsockname(),
            retry_policy=RetryPolicy(
                max_attempts=3, deadline=0.6, **_FAST_RETRY
            ),
        )
        try:
            started = time.monotonic()
            with pytest.raises((DeadlineExceeded, RetriesExhausted)):
                provider.put_chunks(PutChunks(chunks=[(b"fp", b"x")]))
            elapsed = time.monotonic() - started
            assert elapsed < 5.0  # bounded, not the 60s socket default
            assert provider.wire_stats()["client_timeouts"] >= 1
        finally:
            provider.close()
            listener.close()
            for conn in held:
                conn.close()


class TestIdleTimeout:
    def test_server_reaps_idle_connection_and_client_reconnects(self):
        provider_service = ProviderService(in_memory=True)
        handle = serve_provider(provider_service, idle_timeout=0.2)
        provider = RemoteProvider(
            handle.address,
            retry_policy=RetryPolicy(max_attempts=4, **_FAST_RETRY),
        )
        try:
            provider.put_chunks(PutChunks(chunks=[(b"fp1", b"a")]))
            time.sleep(0.5)  # idle long enough for the server to reap us
            # The stub recovers transparently on the next call.
            provider.put_chunks(PutChunks(chunks=[(b"fp2", b"b")]))
            assert provider.wire_stats()["client_reconnects"] >= 1
            assert handle.wire_stats()["server_idle_timeouts"] >= 1
        finally:
            provider.close()
            handle.stop()


class _GatedProvider(ProviderService):
    """Provider whose put_chunks blocks until released (inflight tests)."""

    def __init__(self) -> None:
        super().__init__(in_memory=True)
        self.entered = threading.Event()
        self.release = threading.Event()

    def handle_put_chunks(self, request, tenant="default"):
        self.entered.set()
        assert self.release.wait(10), "test forgot to release the gate"
        return super().handle_put_chunks(request, tenant=tenant)


class TestMaxInflight:
    def test_overloaded_server_sheds_and_client_backs_off(self):
        service = _GatedProvider()
        handle = serve_provider(service, max_inflight=1)
        slow = RemoteProvider(handle.address)
        fast = RemoteProvider(
            handle.address,
            retry_policy=RetryPolicy(max_attempts=10, **_FAST_RETRY),
        )
        results = {}

        def occupant():
            results["slow"] = slow.put_chunks(
                PutChunks(chunks=[(b"fp-slow", b"s")])
            )

        thread = threading.Thread(target=occupant, daemon=True)
        try:
            thread.start()
            assert service.entered.wait(5)
            # Release the gate shortly after the shed client starts
            # retrying, so its backoff has busy replies to absorb.
            releaser = threading.Timer(0.05, service.release.set)
            releaser.start()
            result = fast.put_chunks(PutChunks(chunks=[(b"fp-fast", b"f")]))
            assert result.stored == 1
            thread.join(timeout=5)
            assert results["slow"].stored == 1
            assert fast.wire_stats()["client_busy"] >= 1
            assert handle.wire_stats()["server_busy_rejections"] >= 1
        finally:
            service.release.set()
            slow.close()
            fast.close()
            handle.stop()


class TestGracefulShutdown:
    def test_stop_drains_inflight_request(self):
        service = _GatedProvider()
        handle = serve_provider(service)
        provider = RemoteProvider(handle.address)
        results = {}

        def uploader():
            results["reply"] = provider.put_chunks(
                PutChunks(chunks=[(b"fp", b"v")])
            )

        thread = threading.Thread(target=uploader, daemon=True)
        thread.start()
        assert service.entered.wait(5)
        # Release mid-drain: stop() must wait for the reply to go out.
        threading.Timer(0.1, service.release.set).start()
        handle.stop(drain_timeout=5)
        thread.join(timeout=5)
        assert results["reply"].stored == 1
        provider.close()


class TestIdempotencyGuard:
    def test_non_idempotent_call_does_not_retry(self):
        provider_service = ProviderService(in_memory=True)
        handle = serve_provider(provider_service)
        conn = _Connection(
            handle.address,
            retry_policy=RetryPolicy(max_attempts=5, **_FAST_RETRY),
        )
        try:
            handle.kill()
            with pytest.raises((ConnectionError, OSError)):
                conn.call(m.MSG_STATS_REQUEST, b"", idempotent=False)
            assert conn.counters["retries"] == 0
        finally:
            conn.close()
