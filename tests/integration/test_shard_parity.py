"""Shard-parity differential gate (DESIGN.md §15).

An N-shard deployment — ring-routed KM sketch shards plus ring-routed
provider engines — must be *logically identical* to the single-engine
deployment for the same workload: the union of per-shard chunks (per
cipher fingerprint), the recipe plaintexts, the logical dedup counters,
and the reassembled sketch state (elementwise sum of the per-shard
Count-Min matrices) all byte-match N=1, for every one of the paper's
operating points, with and without transport delay faults.

N=1 additionally proves byte-compatibility of the unsharded path: a
``shards=1`` service writes no ring config and the on-disk layout is
file-for-file identical to today's.
"""

from __future__ import annotations

import pytest

from repro.tedstore.faults import FaultPlan, FaultyKeyManager, FaultyProvider

from tests.harness.differential import (
    MODES,
    assert_shard_parity,
    chunk_union_state,
    make_sharded_deployment,
    make_workload,
    provider_state,
    run_workload,
    union_sketch_state,
)

SHARD_COUNTS = (2, 3, 5)

# Enough duplicate pressure that every shard sees traffic and FTED hits
# several retune points (km_batch_size=1024 against ~1800 chunks).
WORKLOAD = make_workload(
    files=2, chunks_per_file=900, distinct_blocks=32, seed=23
)
FILE_NAMES = [name for name, _ in WORKLOAD]

_DELAY_PLAN = dict(delay_rate=0.3, delay_seconds=0.002)


def _run(tmp_path, mode, shards, **kwargs):
    deployment = make_sharded_deployment(
        mode, tmp_path / f"n{shards}", shards, **kwargs
    )
    results = run_workload(deployment, WORKLOAD)
    deployment.close()
    return deployment, results


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_matches_single(tmp_path, mode, shards):
    single, single_results = _run(tmp_path, mode, 1)
    sharded, sharded_results = _run(tmp_path, mode, shards)
    assert_shard_parity(single, sharded, FILE_NAMES)
    # Client-visible accounting is placement-independent too.
    assert [
        (r.chunk_count, r.stored_chunks, r.duplicate_chunks)
        for r in single_results
    ] == [
        (r.chunk_count, r.stored_chunks, r.duplicate_chunks)
        for r in sharded_results
    ]


@pytest.mark.parametrize("mode", MODES)
def test_sharded_matches_single_under_delay_faults(tmp_path, mode):
    """Routing parity must survive transport delays (reordered wire timing)."""
    single, _ = _run(tmp_path, mode, 1)
    sharded, _ = _run(
        tmp_path,
        mode,
        3,
        key_manager_wrap=lambda t: FaultyKeyManager(
            t, FaultPlan(seed=42, **_DELAY_PLAN)
        ),
        provider_wrap=lambda t: FaultyProvider(
            t, FaultPlan(seed=43, **_DELAY_PLAN)
        ),
    )
    assert_shard_parity(single, sharded, FILE_NAMES)


@pytest.mark.parametrize("mode", MODES)
def test_n1_is_byte_compatible(tmp_path, mode):
    """shards=1 through the sharding-aware constructors = legacy layout."""
    legacy, _ = _run(tmp_path / "legacy", mode, 1)
    n1 = make_sharded_deployment(mode, tmp_path / "n1" / "n1", 1)
    run_workload(n1, WORKLOAD)
    n1.close()
    assert not (n1.directory / "ring.json").exists()
    assert not (n1.directory / "shards").exists()
    assert provider_state(legacy)["files"] == provider_state(n1)["files"]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_every_shard_sees_traffic(tmp_path, shards):
    """The workload is wide enough that no shard sits idle (balance sanity)."""
    sharded, _ = _run(tmp_path, "bted", shards)
    leaves = sharded.provider_service.engine.shard_engines
    assert len(leaves) == shards
    assert all(leaf.stats.unique_chunks > 0 for leaf in leaves)
    union = chunk_union_state(sharded)
    assert sum(leaf.stats.unique_chunks for leaf in leaves) == len(union)
    state = union_sketch_state(sharded)
    assert state["sketch_total"] > 0
