"""Reshard crash matrix: kill-and-recover at every migration barrier.

``repro reshard`` promises crash safety at every barrier of the
snapshot → copy → drain → cutover → GC plan (DESIGN.md §15): a process
death at any named crash point — including mid-write of the ring config
— must leave a store that (a) refuses to serve (``pending_reshard``
after the first durable record), and (b) converges to the *same*
logical end state as a never-crashed migration when the reshard is
re-run.

Logical state is what is compared, not container-file bytes: recovery
may re-pack or quarantine physical artifacts, but per-shard
fingerprint→chunk content, ring config, per-shard sketch counters,
requests, tracked frequencies, and client sequence floors must all
converge exactly.
"""

from __future__ import annotations

import hashlib
import json
import random
import shutil

import pytest

from repro.core.ted import TedKeyManager
from repro.storage import crash
from repro.storage.crash import InjectedCrash
from repro.storage.dedup import DedupEngine
from repro.storage.scrub import fsck_path
from repro.storage.sharded import shard_directories
from repro.tedstore.km_state import KeyManagerStateStore
from repro.tedstore.messages import KeyGenRequest
from repro.tedstore.reshard import (
    pending_reshard,
    reshard_km,
    reshard_provider,
)
from repro.tedstore.ring import HashRing
from repro.tedstore.sharding import ShardedKeyManager

from tests.harness.differential import (
    make_sharded_deployment,
    make_workload,
    run_workload,
)

PROVIDER_POINTS = [
    "reshard.provider.snapshot",
    "reshard.provider.copy",
    "reshard.provider.drain",
    "reshard.provider.cutover",
    "reshard.provider.gc",
]
KM_POINTS = [
    "reshard.km.snapshot",
    "reshard.km.drain",
    "reshard.km.stage",
    "reshard.km.cutover",
    "reshard.km.gc",
]
#: The ring-config publish is itself a write barrier sequence.
RING_POINTS = [
    "ring.config.write",
    "ring.config.before_fsync",
    "ring.config.before_rename",
    "ring.config.before_dirsync",
]

_WIDTH = 2**12
_ROWS = 4


@pytest.fixture(autouse=True)
def _reset_injector():
    crash.get_injector().reset()
    yield
    crash.get_injector().reset()


# -- provider side ------------------------------------------------------------


def _build_provider_template(root, shards: int) -> None:
    deployment = make_sharded_deployment(
        "bted", root, shards, client_batch_size=200
    )
    run_workload(
        deployment,
        make_workload(
            files=2, chunks_per_file=300, distinct_blocks=24, seed=3
        ),
    )
    deployment.provider_service.close()


def provider_logical_state(root) -> dict:
    """Placement + content state, independent of physical packing."""
    sources = shard_directories(root) or [(None, root)]
    per_shard: dict = {}
    for shard_id, path in sources:
        engine = DedupEngine(path)
        chunks = {
            fingerprint.hex(): hashlib.sha256(
                engine.load(fingerprint)
            ).hexdigest()
            for fingerprint, _ in engine.index.items()
        }
        engine.close()
        per_shard[str(shard_id)] = chunks
    ring_path = root / "ring.json"
    ring = json.loads(ring_path.read_text()) if ring_path.exists() else None
    return {"shards": per_shard, "ring": ring}


@pytest.fixture(scope="module")
def provider_world(tmp_path_factory):
    """Template store + the clean-migration result to converge on."""
    base = tmp_path_factory.mktemp("reshard-provider")
    template = base / "template"
    _build_provider_template(template, shards=2)
    clean = base / "clean"
    shutil.copytree(template, clean)
    reshard_provider(clean, 3)
    return template, provider_logical_state(clean)


@pytest.mark.parametrize("point", PROVIDER_POINTS + RING_POINTS)
@pytest.mark.parametrize("hits", [1, 2])
def test_provider_crash_converges(tmp_path, provider_world, point, hits):
    """Crash on the ``hits``-th traversal of ``point``, recover, converge.

    Every point must fire on its first traversal (hits=1); per-item
    points (copy, gc) also crash mid-loop (hits=2). A single-traversal
    point armed at hits=2 simply never fires — the migration then runs
    clean, which must *still* land on the clean-run state.
    """
    template, clean_state = provider_world
    root = tmp_path / "store"
    shutil.copytree(template, root)
    injector = crash.get_injector()
    injector.arm(point, hits=hits)
    try:
        reshard_provider(root, 3)
        crashed = False
    except InjectedCrash:
        crashed = True
    finally:
        injector.reset()
    if hits == 1:
        assert crashed, f"{point} never traversed"
    if crashed:
        # Re-run the migration after the "reboot"; it must converge.
        result = reshard_provider(root, 3)
        assert result["shards"] == [0, 1, 2]
    assert not pending_reshard(root)
    assert provider_logical_state(root) == clean_state
    assert fsck_path(root).clean


def test_provider_crash_blocks_serving(tmp_path, provider_world):
    """After a durable barrier record, startup refuses until reshard."""
    from repro.tedstore.provider import ProviderService

    template, _ = provider_world
    root = tmp_path / "store"
    shutil.copytree(template, root)
    injector = crash.get_injector()
    injector.arm("reshard.provider.cutover")
    with pytest.raises(InjectedCrash):
        reshard_provider(root, 3)
    injector.reset()
    assert pending_reshard(root)
    with pytest.raises(RuntimeError, match="unfinished reshard"):
        ProviderService(directory=root)
    reshard_provider(root, 3)
    service = ProviderService(directory=root)
    assert len(service.ring) == 3
    service.close()


def test_legacy_provider_crash_converges(tmp_path):
    """1 → 2 migration (no prior ring) recovers at every barrier too."""
    template = tmp_path / "template"
    _build_provider_template(template, shards=1)
    clean = tmp_path / "clean"
    shutil.copytree(template, clean)
    reshard_provider(clean, 2, ring_seed=5)
    clean_state = provider_logical_state(clean)
    injector = crash.get_injector()
    for point in PROVIDER_POINTS:
        root = tmp_path / point.replace(".", "-")
        shutil.copytree(template, root)
        injector.arm(point)
        try:
            with pytest.raises(InjectedCrash):
                reshard_provider(root, 2, ring_seed=5)
        finally:
            injector.reset()
        reshard_provider(root, 2, ring_seed=5)
        assert provider_logical_state(root) == clean_state, point
        assert fsck_path(root).clean, point


# -- key-manager side ---------------------------------------------------------


def _km_vectors(count: int, seed: int = 9) -> list:
    from repro.crypto.murmur3 import short_hashes

    rng = random.Random(seed)
    blocks = [rng.randbytes(64) for _ in range(24)]
    return [
        short_hashes(
            hashlib.sha256(blocks[rng.randrange(24)]).digest(),
            _ROWS,
            _WIDTH,
        )
        for _ in range(count)
    ]


def _build_km_template(root, shards: int) -> None:
    front = TedKeyManager(
        secret=b"harness",
        blowup_factor=1.05,
        batch_size=128,
        sketch_width=_WIDTH,
        rng=random.Random(7),
    )
    service = ShardedKeyManager(
        front, HashRing.build(shards, seed=5), state_root=root
    )
    vectors = _km_vectors(400)
    for start in range(0, len(vectors), 100):
        service.handle_keygen(
            KeyGenRequest(hash_vectors=vectors[start : start + 100]),
            client_id="crash-matrix",
            sequence=start // 100 + 1,
        )
    service.close()


def km_logical_state(root) -> dict:
    """Decoded per-shard durable KM state (not raw file bytes)."""
    per_shard: dict = {}
    for shard_id, path in shard_directories(root):
        observer = TedKeyManager(
            secret=b"probe",
            blowup_factor=1.05,
            batch_size=None,
            sketch_rows=_ROWS,
            sketch_width=_WIDTH,
            probabilistic=False,
        )
        store = KeyManagerStateStore(path)
        report = store.restore_into(observer)
        store.close()
        per_shard[str(shard_id)] = {
            "counters": hashlib.sha256(
                observer.sketch._counters.tobytes()
            ).hexdigest(),
            "total": observer.sketch.total,
            "t": observer.t,
            "requests": observer.stats.requests,
            "frequencies": hashlib.sha256(
                repr(sorted(observer._freq_by_identity.items())).encode()
            ).hexdigest(),
            "last_sequence": dict(report.last_sequence),
        }
    return {
        "shards": per_shard,
        "ring": json.loads((root / "ring.json").read_text()),
    }


@pytest.fixture(scope="module")
def km_world(tmp_path_factory):
    base = tmp_path_factory.mktemp("reshard-km")
    template = base / "template"
    _build_km_template(template, shards=2)
    clean = base / "clean"
    shutil.copytree(template, clean)
    reshard_km(clean, 3)
    return template, km_logical_state(clean)


@pytest.mark.parametrize("point", KM_POINTS + RING_POINTS)
@pytest.mark.parametrize("hits", [1, 2])
def test_km_crash_converges(tmp_path, km_world, point, hits):
    template, clean_state = km_world
    root = tmp_path / "km"
    shutil.copytree(template, root)
    injector = crash.get_injector()
    injector.arm(point, hits=hits)
    try:
        reshard_km(root, 3)
        crashed = False
    except InjectedCrash:
        crashed = True
    finally:
        injector.reset()
    if hits == 1:
        assert crashed, f"{point} never traversed"
    if crashed:
        result = reshard_km(root, 3)
        assert result["shards"] == [0, 1, 2]
    assert not pending_reshard(root)
    assert km_logical_state(root) == clean_state


def test_km_delta_only_state_refused(tmp_path):
    """Unsnapshotted (kill -9) KM state must refuse, not stage empty.

    Sketch geometry only lives in snapshot headers, so delta-only state
    cannot be folded — resharding it would silently drop acked batches.
    The refusal must also leave no pending phase log behind, so the
    operator can start/stop the KM to fold the log and then re-run.
    """
    from repro.tedstore.km_state import KeyManagerStateStore
    from repro.tedstore.reshard import ReshardError
    from repro.tedstore.ring import store_ring

    root = tmp_path / "km"
    root.mkdir()
    store_ring(root / "ring.json", HashRing.build(2, seed=5))
    km = TedKeyManager(
        secret=b"x", blowup_factor=1.05, batch_size=None, sketch_width=_WIDTH
    )
    vectors = _km_vectors(20)
    km.generate_seeds(vectors)
    for shard in ("0", "1"):
        store = KeyManagerStateStore(
            root / "shards" / shard, snapshot_every=10_000
        )
        store.log_batch("c1", 1, vectors, km, {"c1": 1})
        store.close()  # closes the handle; never snapshots
    with pytest.raises(ReshardError, match="no intact snapshot"):
        reshard_km(root, 3)
    assert not pending_reshard(root)
    # Fold the logs the way a clean serve stop would, then it works.
    for shard in ("0", "1"):
        observer = TedKeyManager(
            secret=b"x",
            blowup_factor=1.05,
            batch_size=None,
            sketch_width=_WIDTH,
            probabilistic=False,
        )
        store = KeyManagerStateStore(root / "shards" / shard)
        store.restore_into(observer)
        store.snapshot(observer, {"c1": 1})
        store.close()
    result = reshard_km(root, 3)
    assert result["shards"] == [0, 1, 2]
    state = km_logical_state(root)
    assert len(state["shards"]) == 3


def test_km_crash_blocks_serving(tmp_path, km_world):
    template, _ = km_world
    root = tmp_path / "km"
    shutil.copytree(template, root)
    injector = crash.get_injector()
    injector.arm("reshard.km.stage")
    with pytest.raises(InjectedCrash):
        reshard_km(root, 3)
    injector.reset()
    assert pending_reshard(root)
    front = TedKeyManager(
        secret=b"harness",
        blowup_factor=1.05,
        batch_size=128,
        sketch_width=_WIDTH,
    )
    with pytest.raises(RuntimeError, match="unfinished reshard"):
        ShardedKeyManager(front, state_root=root)
    reshard_km(root, 3)
    service = ShardedKeyManager(front, state_root=root)
    assert len(service.ring) == 3
    service.close()
