"""Differential tests: pipelined download vs serial (DESIGN.md §11).

The pipelined restore path promises byte-identical plaintext to the
serial loop for every operating point, every storage layout, and under
injected faults. These tests download the same stored files through
both paths and compare, and prove the path recovers from a provider
crash mid-download over real TCP.
"""

import random

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.obs import tracing
from repro.tedstore.client import TedStoreClient
from repro.tedstore.faults import (
    FaultPlan,
    FaultyProvider,
    InjectedFault,
)
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.network import (
    RemoteKeyManager,
    RemoteProvider,
    serve_key_manager,
    serve_provider,
)
from repro.tedstore.provider import ProviderService
from repro.tedstore.retry import RetryPolicy

from tests.harness.differential import (
    MODES,
    make_deployment,
    make_workload,
    run_workload,
)

_W = 2**14
_FAST_RETRY = dict(base_delay=0.01, multiplier=2.0, max_delay=0.1)

WORKLOAD = make_workload(files=2, chunks_per_file=700, seed=31)
FILE_NAMES = [name for name, _ in WORKLOAD]
EXPECTED = {name: b"".join(chunks) for name, chunks in WORKLOAD}


def pipelined_twin(
    deployment, *, workers: int = 4, pipeline_depth: int = 3
) -> TedStoreClient:
    """A pipelined client sharing the serial deployment's transports.

    Downloads never touch the key manager, so pointing a second client
    at the same provider state isolates exactly the path under test.
    """
    base = deployment.client
    return TedStoreClient(
        base.key_manager,
        base.provider,
        master_key=base.master_key,
        profile=base.profile,
        sketch_width=base.sketch_width,
        batch_size=base.batch_size,
        workers=workers,
        pipeline_depth=pipeline_depth,
        metadata_dedup=base.metadata_dedup,
    )


class TestByteIdentity:
    @pytest.mark.parametrize("mode", MODES)
    def test_pipelined_matches_serial_and_content(self, tmp_path, mode):
        deployment = make_deployment(mode, tmp_path)
        run_workload(deployment, WORKLOAD)
        deployment.close()
        piped = pipelined_twin(deployment)
        for name in FILE_NAMES:
            serial_data = deployment.client.download(name)
            piped_data = piped.download(name)
            assert serial_data == EXPECTED[name]
            assert piped_data == serial_data

    @pytest.mark.parametrize("mode", MODES)
    def test_with_provider_lookahead(self, tmp_path, mode):
        """Container read-ahead on the provider must not change bytes."""
        naive = make_deployment(mode, tmp_path / "naive")
        run_workload(naive, WORKLOAD)
        naive.close()
        naive.provider_service.lookahead_window = 64
        piped = pipelined_twin(naive)
        for name in FILE_NAMES:
            assert piped.download(name) == EXPECTED[name]
            assert naive.client.download(name) == EXPECTED[name]

    def test_metadata_dedup_layout(self, tmp_path):
        deployment = make_deployment(
            "bted", tmp_path, metadata_dedup=True, client_batch_size=200
        )
        run_workload(deployment, WORKLOAD)
        deployment.close()
        piped = pipelined_twin(deployment)
        for name in FILE_NAMES:
            assert (
                deployment.client.download(name)
                == piped.download(name)
                == EXPECTED[name]
            )


class _RetryingProvider:
    """Minimal retry shim for in-process fault-injection tests.

    The real TCP transport retries idempotent calls through
    ``RetryPolicy``; local transports have no wire layer, so close/drop
    faults would otherwise surface directly. Reads are idempotent, so a
    bounded retry here models the production behavior.
    """

    def __init__(self, inner, attempts: int = 8) -> None:
        self._inner = inner
        self._attempts = attempts
        self.retries = 0

    def get_chunks(self, request):
        return self._retry(self._inner.get_chunks, request)

    def get_recipes(self, request):
        return self._retry(self._inner.get_recipes, request)

    def _retry(self, call, request):
        for attempt in range(self._attempts):
            try:
                return call(request)
            except InjectedFault:
                self.retries += 1
        return call(request)  # last try surfaces the error

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestDownloadUnderFaults:
    def test_delay_faults_do_not_change_bytes(self, tmp_path):
        """Injected delays jitter worker interleavings, never output."""
        delay_plan = FaultPlan(
            delay_rate=0.3, delay_seconds=0.002, seed=17
        )
        deployment = make_deployment(
            "fted",
            tmp_path,
            client_batch_size=150,
            provider_wrap=lambda t: FaultyProvider(t, delay_plan),
        )
        run_workload(deployment, WORKLOAD)
        deployment.close()
        piped = pipelined_twin(deployment, workers=4, pipeline_depth=2)
        for name in FILE_NAMES:
            assert piped.download(name) == EXPECTED[name]
        counters = deployment.client.provider.fault_counters
        assert counters["delays"] > 0

    def test_close_faults_recovered_by_retry(self, tmp_path):
        """Connection-close faults during fetches recover via retry and
        still restore byte-identical plaintext."""
        deployment = make_deployment("bted", tmp_path)
        run_workload(deployment, WORKLOAD)
        deployment.close()

        close_plan = FaultPlan(close_rate=0.2, seed=3)
        retrying = _RetryingProvider(
            FaultyProvider(deployment.client.provider, close_plan)
        )
        piped = pipelined_twin(deployment, workers=3)
        piped.provider = retrying
        serial = pipelined_twin(deployment, workers=1)
        serial.provider = retrying
        for name in FILE_NAMES:
            assert piped.download(name) == EXPECTED[name]
            assert serial.download(name) == EXPECTED[name]
        assert retrying.retries > 0  # the faults really fired


class _KillAndRestartOnGet:
    """Provider wrapper that crashes+restarts the server mid-download."""

    def __init__(self, inner, restart, after_calls: int = 2) -> None:
        self._inner = inner
        self._restart = restart
        self._calls = 0
        self._after = after_calls
        self.fired = False

    def get_chunks(self, request):
        self._calls += 1
        if not self.fired and self._calls > self._after:
            self.fired = True
            self._restart()
        return self._inner.get_chunks(request)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestProviderCrashMidDownload:
    def test_pipelined_download_survives_provider_restart(self):
        """Kill the provider while the prefetcher has fetches in flight;
        the retry layer must recover and the restored bytes must be
        exact — no truncation, no reordering."""
        km_service = KeyManagerService(
            TedKeyManager(
                secret=b"restore-crash",
                blowup_factor=1.05,
                batch_size=500,
                sketch_width=_W,
                rng=random.Random(5),
            )
        )
        provider_service = ProviderService(in_memory=True)
        km_handle = serve_key_manager(km_service)
        prov_handle = serve_provider(provider_service)
        handles = {"provider": prov_handle}

        def restart_provider():
            port = handles["provider"].address[1]
            handles["provider"].kill()  # hard stop: connections die
            handles["provider"] = serve_provider(
                provider_service, port=port
            )

        km = RemoteKeyManager(km_handle.address)
        raw_provider = RemoteProvider(
            prov_handle.address,
            retry_policy=RetryPolicy(max_attempts=6, **_FAST_RETRY),
            data_connections=2,
        )
        provider = _KillAndRestartOnGet(raw_provider, restart_provider)
        client = TedStoreClient(
            km,
            provider,
            profile=SHACTR,
            sketch_width=_W,
            batch_size=120,  # many GetChunks batches → crash mid-stream
            workers=3,
            pipeline_depth=2,
        )
        try:
            name, chunks = WORKLOAD[0]
            data = b"".join(chunks)
            client.upload_chunks(name, chunks)
            assert not provider.fired  # uploads don't tick the fuse
            restored = client.download(name)
            assert provider.fired  # the crash landed mid-download
            assert restored == data

            wire = raw_provider.wire_stats()
            assert wire["client_retries"] >= 1
            assert wire["client_reconnects"] >= 1
        finally:
            km.close()
            raw_provider.close()
            km_handle.stop()
            handles["provider"].stop()
