"""Failure injection: corruption, torn writes, and concurrent stress."""

import os
import random
import threading

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.storage.dedup import DedupEngine
from repro.storage.kvstore import KVStore
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import PutChunks
from repro.tedstore.provider import ProviderService
from repro.traces.workload import unique_file

_W = 2**14


def _client(provider):
    key_manager = KeyManagerService(
        TedKeyManager(secret=b"fi-secret", t=100, sketch_width=_W)
    )
    return TedStoreClient(
        LocalKeyManager(key_manager),
        LocalProvider(provider),
        profile=SHACTR,
        sketch_width=_W,
        batch_size=500,
    )


class TestCorruption:
    def test_corrupt_container_detected_at_download(self, tmp_path):
        provider = ProviderService(
            directory=str(tmp_path), container_bytes=32 << 10
        )
        client = _client(provider)
        data = unique_file(40_000)
        client.upload("f", data)
        provider.flush()
        # Flip bytes in every sealed container.
        containers = list(tmp_path.glob("containers/container-*.bin"))
        assert containers
        for path in containers:
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            path.write_bytes(bytes(blob))
        # Decryption still succeeds (stream cipher), but the restored data
        # must differ — and the size check in download may fire first.
        try:
            restored = client.download("f")
        except ValueError:
            return
        assert restored != data

    def test_corrupt_sstable_quarantined_on_reopen(self, tmp_path):
        store = KVStore(tmp_path)
        store.put(b"k", b"v" * 100)
        store.close()
        table = next(tmp_path.glob("table-*.sst"))
        blob = bytearray(table.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        table.write_bytes(bytes(blob))
        # Recovery survives the damage: the corrupt table is set aside in
        # quarantine/ rather than crashing the store, and its keys are gone.
        reopened = KVStore(tmp_path)
        assert reopened.get(b"k") is None
        assert reopened.table_count() == 0
        assert (tmp_path / "quarantine" / table.name).exists()
        reopened.close()

    def test_torn_wal_tail_recovers_prefix(self, tmp_path):
        store = KVStore(tmp_path, memtable_bytes=1 << 20)
        for i in range(50):
            store.put(b"k-%d" % i, b"v-%d" % i)
        # Crash: no close. Tear the last WAL record.
        wal = tmp_path / "wal.log"
        blob = wal.read_bytes()
        wal.write_bytes(blob[:-4])
        reopened = KVStore(tmp_path, memtable_bytes=1 << 20)
        # Everything except (possibly) the torn record survives.
        for i in range(49):
            assert reopened.get(b"k-%d" % i) == b"v-%d" % i
        reopened.close()
        store.close()

    def test_missing_container_raises_keyerror(self, tmp_path):
        engine = DedupEngine(tmp_path, container_bytes=1024)
        engine.store(b"fp", b"x" * 512)
        engine.flush()
        for path in (tmp_path / "containers").glob("container-*.bin"):
            os.unlink(path)
        with pytest.raises(KeyError):
            engine.load(b"fp")


class TestConcurrentStress:
    def test_parallel_uploads_to_on_disk_provider(self, tmp_path):
        provider = ProviderService(
            directory=str(tmp_path), container_bytes=32 << 10
        )
        errors = []
        rng = random.Random(3)
        shared = [unique_file(2000, client_id=99) for _ in range(20)]

        def worker(worker_id):
            try:
                for i in range(30):
                    if rng.random() < 0.5:
                        chunk = shared[i % len(shared)]
                    else:
                        chunk = unique_file(2000, client_id=worker_id * 100 + i)
                    fingerprint = bytes([worker_id]) + chunk[:31]
                    provider.handle_put_chunks(
                        PutChunks(chunks=[(fingerprint, chunk)])
                    )
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = dict(provider.stats())
        assert stats["logical_chunks"] == 120
        # Every stored chunk must be readable back.
        provider.flush()
        for fingerprint, _ in provider.engine.index.items():
            assert provider.engine.load(fingerprint)
