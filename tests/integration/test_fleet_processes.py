"""Multi-process shard fleet end to end (DESIGN.md §17).

Real ``repro serve-shard`` child processes, real sockets: upload/restore
through a fleet, typed fail-fast when a shard dies, rejoin after
restart, and the SIGTERM drain-and-seal shutdown path. The full seeded
fault matrix lives in ``tools/chaos.py`` (exercised by
``tests/integration/test_chaos.py`` and the CI ``chaos-smoke`` job);
these tests pin the individual behaviours with one fleet per scenario.
"""

from __future__ import annotations

import hashlib
import importlib.util
import random
import sys
import time
from pathlib import Path

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import get_profile
from repro.storage.scrub import fsck_path
from repro.tedstore.client import TedStoreClient
from repro.tedstore.fleet import MultiShardProvider
from repro.tedstore.health import ShardUnavailableError
from repro.tedstore.inprocess import LocalKeyManager
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.retry import DeadlineExceeded, RetryPolicy
from repro.tedstore.ring import HashRing, store_ring
from repro.traces.workload import unique_file

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "chaos_harness", REPO_ROOT / "tools" / "chaos.py"
)
chaos = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("chaos_harness", chaos)
_spec.loader.exec_module(chaos)

_W = 2**14
_TYPED = (ShardUnavailableError, DeadlineExceeded, ConnectionError, OSError)


class Fleet:
    """N provider shard processes + in-process KM, one client."""

    def __init__(self, tmp_path: Path, shards: int = 2) -> None:
        self.root = tmp_path / "fleet"
        self.root.mkdir()
        log_dir = tmp_path / "logs"
        log_dir.mkdir()
        ports = {k: chaos._free_port() for k in range(shards)}
        self.ring = HashRing.build(shards).with_endpoints(
            {k: f"127.0.0.1:{ports[k]}" for k in range(shards)}
        )
        store_ring(self.root / "ring.json", self.ring)
        self.procs = {
            k: chaos.ShardProc("provider", k, self.root, ports[k], log_dir)
            for k in range(shards)
        }
        for proc in self.procs.values():
            proc.start()
        self.provider = MultiShardProvider(
            self.ring,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.05, max_delay=0.2, deadline=8.0
            ),
            breaker_failures=2,
            breaker_reset=0.5,
            probe_timeout=1.0,
            connect_timeout=1.5,
            io_timeout=2.0,
        )
        self.client = TedStoreClient(
            LocalKeyManager(
                KeyManagerService(
                    TedKeyManager(
                        secret=b"fleet-secret",
                        t=50,
                        sketch_width=_W,
                        rng=random.Random(5),
                    )
                )
            ),
            self.provider,
            master_key=hashlib.sha256(b"fleet-master").digest(),
            profile=get_profile("shactr"),
            sketch_width=_W,
            batch_size=512,
        )

    def wait_shard_closed(self, shard: int, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        route = self.provider.routes()[shard]
        while time.monotonic() < deadline:
            try:
                route.probe()
                route.breaker.record_success()
            except Exception:
                route.breaker.record_failure()
            if self.provider.shard_health()[shard] == "closed":
                return
            time.sleep(0.05)
        raise AssertionError(f"shard {shard} never rejoined")

    def close(self) -> None:
        self.provider.close()
        for proc in self.procs.values():
            proc.stop_hard()


@pytest.fixture
def fleet(tmp_path):
    deployment = Fleet(tmp_path)
    yield deployment
    deployment.close()


def _assert_clean_leaves(root: Path, shards: int) -> None:
    for shard in range(shards):
        leaf = root / "shards" / str(shard)
        stray = [p for p in leaf.rglob("*.tmp")]
        assert stray == [], f"shard {shard} left tmp files: {stray}"
        report = fsck_path(leaf)
        assert report.clean, f"shard {shard} fsck: {report}"


class TestFleetServing:
    def test_upload_restore_and_clean_sigterm(self, fleet):
        files = {f"f{i}": unique_file(30_000, client_id=i) for i in range(4)}
        for name, data in files.items():
            fleet.client.upload(name, data)
        for name, data in files.items():
            assert fleet.client.download(name) == data
        # Chunks actually spread across both failure domains.
        assert all(n > 0 for n in fleet.provider.routed_counts().values())

        fleet.provider.close()
        # SIGTERM runs the drain → ProviderService.close() path in every
        # child: containers sealed, snapshots cut, no stray temp files.
        rcs = {k: p.terminate() for k, p in fleet.procs.items()}
        assert set(rcs.values()) == {0}
        _assert_clean_leaves(fleet.root, len(fleet.procs))

    def test_dead_shard_fails_fast_and_typed(self, fleet):
        fleet.client.upload("before", unique_file(30_000, client_id=90))
        fleet.procs[0].kill()
        started = time.monotonic()
        observed = []
        for i in range(4):
            try:
                fleet.client.upload(f"during-{i}", unique_file(30_000, client_id=91 + i))
            except _TYPED as exc:
                observed.append(exc)
        elapsed = time.monotonic() - started
        assert observed, "no upload routed at the dead shard"
        # Fail fast, never hang: by the time the breaker opens every
        # further attempt costs microseconds, so the whole degraded
        # stretch stays inside a couple of io-timeout budgets.
        assert elapsed < 10.0
        assert fleet.provider.shard_health()[0] == "open"
        # With the breaker open, anything routed at shard 0 fails in
        # microseconds — typed, before a single byte hits the wire.
        from repro.tedstore import messages as m

        owned_by_0 = next(
            bytes([i]) * 32
            for i in range(256)
            if fleet.ring.shard_for_key(bytes([i]) * 32) == 0
        )
        fast_start = time.monotonic()
        with pytest.raises(ShardUnavailableError):
            fleet.provider.get_chunks(m.GetChunks(fingerprints=[owned_by_0]))
        assert time.monotonic() - fast_start < 0.5

    def test_restarted_shard_recovers_and_rejoins(self, fleet):
        files = {f"f{i}": unique_file(30_000, client_id=i) for i in range(3)}
        for name, data in files.items():
            fleet.client.upload(name, data)
        fleet.procs[0].kill()
        with pytest.raises(_TYPED):
            for i in range(4):
                fleet.client.upload(f"kick-{i}", unique_file(30_000, client_id=80 + i))
        fleet.procs[0].start()  # §12 crash recovery replays its state
        fleet.wait_shard_closed(0)
        fleet.client.upload("after", unique_file(30_000, client_id=99))
        # §12 is convergence-on-retry: chunks that sat in shard 0's
        # still-open container died with the process, so the client
        # re-uploads (the provider dedups whatever did survive) and the
        # store converges — then every pre-kill file restores.
        for name, data in files.items():
            fleet.client.upload(name, data)
        for name, data in files.items():
            assert fleet.client.download(name) == data
        # Two serving banners: the original run and the §12 restart.
        assert fleet.procs[0].banner().count("listening on") == 2

    def test_stale_peer_epoch_is_a_typed_regression(self, fleet):
        from repro.storage.dedup import RingEpochRegressionError

        future = HashRing(
            fleet.ring.shards,
            seed=fleet.ring.seed,
            epoch=fleet.ring.epoch + 2,
            endpoints=fleet.ring.endpoints,
        )
        ahead = MultiShardProvider(future, heartbeat_interval=0.0)
        try:
            pongs = ahead.ping_all()
            assert set(pongs) == set(fleet.procs)
            for pong in pongs.values():
                with pytest.raises(RingEpochRegressionError):
                    ahead.check_peer_epoch(pong)
        finally:
            ahead.close()
