"""Differential proof: pipelined upload path ≡ serial upload path.

For each of the paper's operating points (MLE, BTED, FTED) the pipelined
client — multiple encrypt workers, coalesced batched keygen, overlapped
uploads — must leave the provider and the key manager in *bit-identical*
state to the serial baseline. These tests execute that contract through
:mod:`tests.harness.differential` against real on-disk providers.
"""

from __future__ import annotations

import pytest

from tests.harness.differential import (
    MODES,
    assert_equivalent,
    make_deployment,
    make_workload,
    run_workload,
)

# A workload with real duplicate pressure: ~40 distinct blocks behind
# ~2600 chunk references across two files, so every mode exercises both
# the dedup fast path and (for FTED) several server-side retune points.
WORKLOAD = make_workload(
    files=2, chunks_per_file=1300, distinct_blocks=40, seed=11
)
FILE_NAMES = [name for name, _ in WORKLOAD]


def _run(tmp_path, mode, **client_kwargs):
    deployment = make_deployment(mode, tmp_path, **client_kwargs)
    results = run_workload(deployment, WORKLOAD)
    deployment.close()
    return deployment, results


@pytest.mark.parametrize("mode", MODES)
def test_pipelined_matches_serial_bit_for_bit(tmp_path, mode):
    """workers=3, no cache: strictly identical state *and* counters."""
    serial, serial_results = _run(tmp_path / "serial", mode, workers=1)
    piped, piped_results = _run(
        tmp_path / "piped", mode, workers=3, pipeline_depth=2
    )
    assert piped.client.pipelined
    assert not serial.client.pipelined
    assert_equivalent(
        serial,
        piped,
        FILE_NAMES,
        serial_results,
        piped_results,
    )
    # Without a cache nothing is resolved client-side.
    assert all(r.cache_hits == 0 for r in piped_results)


@pytest.mark.parametrize("mode", MODES)
def test_cached_pipeline_matches_serial_storage(tmp_path, mode):
    """The fingerprint cache may skip PUTs, never change stored bytes."""
    serial, serial_results = _run(tmp_path / "serial", mode, workers=1)
    cached, cached_results = _run(
        tmp_path / "cached", mode, workers=3, cache_capacity=8192
    )
    assert_equivalent(
        serial,
        cached,
        FILE_NAMES,
        serial_results,
        cached_results,
        ignore_offered_counters=True,
    )
    # The workload is duplicate-heavy, so the cache must actually fire —
    # otherwise this test would pass vacuously.
    assert sum(r.cache_hits for r in cached_results) > 0
    cache = cached.client.fingerprint_cache
    assert cache is not None and cache.hits == sum(
        r.cache_hits for r in cached_results
    )


def test_single_worker_pipeline_matches_serial(tmp_path):
    """workers=1 + cache routes through the pipeline; still identical."""
    serial, serial_results = _run(tmp_path / "serial", "fted", workers=1)
    piped, piped_results = _run(
        tmp_path / "piped", "fted", workers=1, cache_capacity=4096
    )
    assert piped.client.pipelined
    assert_equivalent(
        serial,
        piped,
        FILE_NAMES,
        serial_results,
        piped_results,
        ignore_offered_counters=True,
    )


@pytest.mark.parametrize("mode", ["fted"])
def test_pipelined_downloads_round_trip(tmp_path, mode):
    """Pipelined uploads stay readable through the normal download path."""
    deployment, _ = _run(
        tmp_path / "piped", mode, workers=3, cache_capacity=4096
    )
    for name, chunks in WORKLOAD:
        assert deployment.client.download(name) == b"".join(chunks)


def test_pipelined_metadata_dedup_matches_serial(tmp_path):
    """The metadata-dedup recipe layout is preserved by the pipeline."""
    serial = make_deployment(
        "fted", tmp_path / "serial", workers=1, metadata_dedup=True
    )
    piped = make_deployment(
        "fted", tmp_path / "piped", workers=3, metadata_dedup=True
    )
    serial_results = run_workload(serial, WORKLOAD)
    piped_results = run_workload(piped, WORKLOAD)
    serial.close()
    piped.close()
    assert_equivalent(
        serial, piped, FILE_NAMES, serial_results, piped_results
    )
    for name, chunks in WORKLOAD:
        assert piped.client.download(name) == b"".join(chunks)
