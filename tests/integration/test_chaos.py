"""A small seeded chaos matrix, in-repo (the full one runs in CI).

Drives ``tools/chaos.py``'s :func:`run_chaos` with a 2-shard fleet and
the kill fault: every acceptance property of the harness — typed
degraded-mode errors, post-restart convergence against a serial replay
(summed sketch, unsealed recipes, chunk-union sandwich), clean fsck,
failover metrics — is asserted inside the harness itself, so this test
passing means the whole chain held.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "chaos_harness", REPO_ROOT / "tools" / "chaos.py"
)
chaos = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("chaos_harness", chaos)
_spec.loader.exec_module(chaos)


@pytest.mark.parametrize("target", ["provider", "km"])
def test_kill_matrix_small(tmp_path, target):
    report = chaos.run_chaos(
        target=target,
        shards=2,
        seed=7,
        faults=("kill",),
        uploads_per_phase=2,
        size_kb=24,
        workdir=tmp_path / target,
    )
    assert report["ok"]
    assert report["acked"] > 0
    assert report["failovers"]["open"] >= 1
    assert report["failovers"]["rejoin"] >= 1
    assert report["max_attempt_seconds"] < 10.0
    if target == "provider":
        parity = report["parity"]
        assert parity["sketch"] is True
        assert parity["recipes"] == report["verified_downloads"]
        assert (
            parity["referenced_chunks"]
            <= parity["unique_chunks"]
            <= parity["serial_chunks"]
        )


def test_unknown_fault_rejected(tmp_path):
    with pytest.raises(ValueError, match="fault"):
        chaos.run_chaos(faults=("meteor",), workdir=tmp_path)


def test_merge_bench_writes_profile(tmp_path, monkeypatch):
    out = tmp_path / "BENCH_load.json"
    monkeypatch.setenv("REPRO_BENCH_LOAD_OUT", str(out))
    report = {
        "target": "provider",
        "shards": 3,
        "seed": 1,
        "faults": ["kill"],
        "attempts": 10,
        "acked": 8,
        "typed_errors": 2,
        "duration_seconds": 4.0,
        "max_attempt_seconds": 1.5,
        "mib_per_second": 0.5,
    }
    path = chaos.merge_bench(report)
    assert path == out
    import json

    document = json.loads(out.read_text())
    profile = document["profiles"]["chaos_provider"]
    assert profile["ops_total"] == 10
    assert profile["errors_total"] == 2
    assert profile["breached"] is False
