"""Trace propagation: one coherent trace across client, key manager, provider.

Covers the observability acceptance criteria (DESIGN.md §9): an upload or
download produces a single trace whose spans appear on every entity it
touched; wire retries and reconnects surface as span events with their
counters incremented; and the optional trace-context field degrades
gracefully against old-format peers in both directions.
"""

import random
import socket
import struct
import threading

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.obs import metrics as obs_metrics, tracing
from repro.tedstore import messages as m
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.network import (
    RemoteKeyManager,
    RemoteProvider,
    _Connection,
    serve_key_manager,
    serve_provider,
)
from repro.tedstore.provider import ProviderService
from repro.tedstore.retry import RetryPolicy
from repro.traces.workload import unique_file

_W = 2**14
_FAST_RETRY = dict(base_delay=0.01, multiplier=2.0, max_delay=0.1)


@pytest.fixture
def recorder():
    """Install a fresh tracer + recorder, restore the old one afterwards."""
    previous = tracing.get_tracer()
    recorder = tracing.SpanRecorder()
    tracing.set_tracer(tracing.Tracer(recorder=recorder))
    yield recorder
    tracing.set_tracer(previous)


def _key_manager_service():
    return KeyManagerService(
        TedKeyManager(
            secret=b"trace-secret",
            blowup_factor=1.05,
            batch_size=500,
            sketch_width=_W,
            rng=random.Random(7),
        )
    )


def _client(km, provider, **kwargs):
    return TedStoreClient(
        km, provider, profile=SHACTR, sketch_width=_W, **kwargs
    )


def _spans_by_name(spans):
    out = {}
    for span in spans:
        out.setdefault(span.name, []).append(span)
    return out


class TestInProcessTrace:
    def test_upload_produces_one_trace_with_service_spans(self, recorder):
        client = _client(
            LocalKeyManager(_key_manager_service()),
            LocalProvider(ProviderService(in_memory=True)),
        )
        client.upload("f", unique_file(40_000))

        trace_ids = recorder.trace_ids()
        assert len(trace_ids) == 1, "one upload must be one trace"
        spans = _spans_by_name(recorder.for_trace(trace_ids[0]))
        assert "client.upload" in spans
        # Both servers' service spans joined the same trace.
        assert "keymanager.keygen" in spans
        assert "provider.put_chunks" in spans
        root = spans["client.upload"][0]
        assert root.parent_span_id is None
        # Service spans descend from the client root via the contextvar.
        keygen = spans["keymanager.keygen"][0]
        assert keygen.trace_id == root.trace_id
        assert keygen.parent_span_id is not None

    def test_download_is_its_own_trace(self, recorder):
        client = _client(
            LocalKeyManager(_key_manager_service()),
            LocalProvider(ProviderService(in_memory=True)),
        )
        data = unique_file(20_000)
        client.upload("f", data)
        assert client.download("f") == data
        assert len(recorder.trace_ids()) == 2
        download_spans = _spans_by_name(
            recorder.for_trace(recorder.trace_ids()[-1])
        )
        assert "client.download" in download_spans
        assert "provider.get_chunks" in download_spans


class TestWireTrace:
    def test_tcp_roundtrip_is_one_coherent_trace(self, recorder):
        """Acceptance: same trace_id on client, key manager, and provider
        spans when the entities talk over real sockets."""
        km_handle = serve_key_manager(_key_manager_service())
        prov_handle = serve_provider(ProviderService(in_memory=True))
        km = RemoteKeyManager(km_handle.address)
        provider = RemoteProvider(prov_handle.address)
        client = _client(km, provider, batch_size=200)
        try:
            client.upload("wire-file", unique_file(30_000))
        finally:
            km.close()
            provider.close()
            km_handle.stop()
            prov_handle.stop()

        spans = _spans_by_name(recorder.spans())
        root = spans["client.upload"][0]
        # Client-side RPC spans and server-side dispatch + service spans
        # all share the root's trace id (servers run in this process, so
        # one recorder sees every entity).
        for name in (
            "rpc.keygen",
            "rpc.put_chunks",
            "server.keygen",
            "server.put_chunks",
            "keymanager.keygen",
            "provider.put_chunks",
        ):
            assert name in spans, f"missing {name}"
            for span in spans[name]:
                assert span.trace_id == root.trace_id, name
        # The server dispatch span's parent is the client's rpc span.
        rpc_ids = {s.span_id for s in spans["rpc.keygen"]}
        assert spans["server.keygen"][0].parent_span_id in rpc_ids

    def test_retries_surface_as_span_events_and_counters(self, recorder):
        """PR-1 recovery machinery is trace-visible: a provider crash shows
        up as wire.retry / wire.reconnect events on the rpc span, with the
        retry counters (legacy dict and registry) incremented."""
        registry = obs_metrics.get_registry()
        wire_counter = registry.counter(
            "ted_wire_client_events_total",
            labelnames=("entity", "event"),
        )
        retries_before = wire_counter.labels(
            entity="provider", event="retries"
        ).value

        provider_service = ProviderService(in_memory=True)
        km_handle = serve_key_manager(_key_manager_service())
        handles = {"provider": serve_provider(provider_service)}
        km = RemoteKeyManager(km_handle.address)
        provider = RemoteProvider(
            handles["provider"].address,
            retry_policy=RetryPolicy(max_attempts=6, **_FAST_RETRY),
        )
        client = _client(km, provider, batch_size=200)
        try:
            data = unique_file(30_000)
            client.upload("before-crash", data)
            port = handles["provider"].address[1]
            handles["provider"].kill()
            handles["provider"] = serve_provider(provider_service, port=port)
            client.upload("after-crash", data)

            wire = provider.wire_stats()
            assert wire["client_retries"] >= 1
            assert wire["client_reconnects"] >= 1
            retries_after = wire_counter.labels(
                entity="provider", event="retries"
            ).value
            assert retries_after >= retries_before + 1

            events = [
                name
                for span in recorder.spans()
                if span.name.startswith("rpc.")
                for name in span.event_names()
            ]
            assert "wire.retry" in events
            assert "wire.reconnect" in events
        finally:
            km.close()
            provider.close()
            km_handle.stop()
            handles["provider"].stop()


class TestOldPeerInterop:
    def test_unflagged_frame_accepted_by_new_server(self, recorder):
        """Old client → new server: a frame without the trace flag (and so
        without a context section) is served normally, untraced."""
        handle = serve_provider(ProviderService(in_memory=True))
        try:
            sock = socket.create_connection(handle.address, timeout=5)
            try:
                request = m.PutChunks(chunks=[(b"fp-old", b"payload")])
                frame = m.frame(m.MSG_PUT_CHUNKS, request.encode())
                assert frame[4] == m.MSG_PUT_CHUNKS  # flag bit really unset
                sock.sendall(frame)
                header = _recv_exactly(sock, 5)
                (length,) = struct.unpack(">I", header[:4])
                assert header[4] == m.MSG_PUT_CHUNKS_RESPONSE
                payload = _recv_exactly(sock, length - 1)
                reply = m.PutChunksResponse.decode(payload)
                assert reply.stored == 1
            finally:
                sock.close()
        finally:
            handle.stop()
        # The server span exists but started its own fresh trace.
        server_spans = [
            s for s in recorder.spans() if s.name == "server.put_chunks"
        ]
        assert server_spans
        assert server_spans[0].parent_span_id is None

    def test_new_client_downgrades_against_old_server(self, recorder):
        """New client → old server: the peer rejects the flagged type byte
        with an 'unexpected message' error; the client latches traces off,
        resends untraced, and counts the downgrade."""
        server = _OldStyleServer()
        server.start()
        try:
            conn = _Connection(
                server.address,
                retry_policy=RetryPolicy(max_attempts=4, **_FAST_RETRY),
                entity="provider",
            )
            try:
                reply_type, payload = conn.call(m.MSG_STATS_REQUEST, b"")
                assert reply_type == m.MSG_STATS_RESPONSE
                assert m.decode_stats(payload) == [("old", 1)]
                assert conn.counters["trace_downgrades"] == 1
                # The latch holds: the next call goes out unflagged at once.
                conn.call(m.MSG_STATS_REQUEST, b"")
                assert conn.counters["trace_downgrades"] == 1
                assert server.flagged_rejections == 1
            finally:
                conn.close()
        finally:
            server.stop()
        downgrade_events = [
            name
            for span in recorder.spans()
            for name in span.event_names()
            if name == "wire.trace_downgrade"
        ]
        assert len(downgrade_events) == 1


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    data = b""
    while len(data) < n:
        piece = sock.recv(n - len(data))
        if not piece:
            raise ConnectionError("peer closed")
        data += piece
    return data


class _OldStyleServer:
    """Minimal pre-trace-field TEDStore server.

    Implements the original framing only: ``[len u32][type u8][payload]``
    with no knowledge of ``MSG_FLAG_TRACE``. A flagged type byte is an
    unknown message type and is rejected exactly the way the old dispatch
    loop rejects it — with ``MSG_ERROR "unexpected message <type>"``.
    """

    def __init__(self) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(2)
        self.address = self._listener.getsockname()
        self.flagged_rejections = 0
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._listener.close()
        self._thread.join(timeout=5)

    def _serve(self) -> None:
        try:
            conn, _ = self._listener.accept()
        except OSError:
            return
        with conn:
            try:
                while True:
                    header = _recv_exactly(conn, 5)
                    (length,) = struct.unpack(">I", header[:4])
                    message_type = header[4]
                    payload = _recv_exactly(conn, length - 1)
                    if message_type == m.MSG_STATS_REQUEST:
                        reply = m.frame(
                            m.MSG_STATS_RESPONSE, m.encode_stats([("old", 1)])
                        )
                    else:
                        # An old server cannot mask the flag bit — the
                        # flagged byte simply is not a type it knows. Its
                        # read path also consumed the trace-context bytes
                        # as payload, which is why the reply must come
                        # before it tries to parse them: rejection happens
                        # on the type byte alone.
                        if message_type & m.MSG_FLAG_TRACE:
                            self.flagged_rejections += 1
                        reply = m.frame(
                            m.MSG_ERROR,
                            m.encode_error(
                                f"unexpected message {message_type}"
                            ),
                        )
                    conn.sendall(reply)
            except (ConnectionError, OSError):
                return
