"""Utility helpers: varints, byte ops, timers."""

import time

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    StageTimer,
    Stopwatch,
    bytes_to_int,
    ceil_div,
    decode_uvarint,
    encode_uvarint,
    int_to_bytes,
    xor_bytes,
)


class TestVarint:
    @given(st.integers(0, 2**63 - 1))
    def test_roundtrip(self, value):
        encoded = encode_uvarint(value)
        decoded, offset = decode_uvarint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_single_byte_values(self):
        assert encode_uvarint(0) == b"\x00"
        assert encode_uvarint(127) == b"\x7f"

    def test_multi_byte_boundary(self):
        assert encode_uvarint(128) == b"\x80\x01"

    def test_offset_decoding(self):
        data = b"\xff" + encode_uvarint(300)
        value, offset = decode_uvarint(data, 1)
        assert value == 300
        assert offset == len(data)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_rejects_truncated(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80")

    def test_rejects_overlong(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80" * 11 + b"\x01")


class TestBytesUtil:
    def test_xor(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_xor_self_is_zero(self):
        assert xor_bytes(b"abc", b"abc") == b"\x00\x00\x00"

    def test_xor_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"a", b"ab")

    @given(st.integers(0, 2**64 - 1))
    def test_int_bytes_roundtrip(self, value):
        assert bytes_to_int(int_to_bytes(value, 8)) == value

    def test_int_to_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1, 4)

    @pytest.mark.parametrize(
        "n,d,expected", [(0, 5, 0), (1, 5, 1), (5, 5, 1), (6, 5, 2)]
    )
    def test_ceil_div(self, n, d, expected):
        assert ceil_div(n, d) == expected

    def test_ceil_div_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)


class TestTimers:
    def test_stage_accumulation(self):
        timer = StageTimer()
        with timer.stage("a"):
            time.sleep(0.01)
        with timer.stage("a"):
            pass
        assert timer.total("a") >= 0.01
        assert timer.total("missing") == 0.0

    def test_stage_records_on_exception(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("x"):
                raise RuntimeError("boom")
        assert timer.total("x") >= 0.0
        assert "x" in timer.totals()

    def test_manual_add_and_merge(self):
        a = StageTimer()
        b = StageTimer()
        a.add("s", 1.0)
        b.add("s", 2.0)
        b.add("t", 3.0)
        a.merge(b)
        assert a.total("s") == 3.0
        assert a.total("t") == 3.0

    def test_reset(self):
        timer = StageTimer()
        timer.add("s", 1.0)
        timer.reset()
        assert timer.totals() == {}

    def test_stopwatch(self):
        watch = Stopwatch()
        time.sleep(0.01)
        first = watch.elapsed()
        assert first >= 0.01
        watch.restart()
        assert watch.elapsed() < first
