"""Experiment B.* drivers (smoke-scale: shapes, not absolute numbers)."""

import random

import pytest

from repro.analysis.perf import (
    UPLOAD_STEPS,
    experiment_b1,
    experiment_b3,
    experiment_b4,
    experiment_b5,
    keygen_speed_blind_bls,
    keygen_speed_blind_rsa,
    keygen_speed_ted,
)
from repro.crypto import rsa


class TestExperimentB1:
    def test_breakdown_covers_all_steps(self):
        breakdown = experiment_b1(file_bytes=64 << 10, profile_name="shactr")
        per_mb = breakdown.ms_per_mb()
        for step in UPLOAD_STEPS:
            assert step in per_mb, step
            assert per_mb[step] >= 0

    def test_keygen_is_not_the_bottleneck(self):
        # §5.3 headline: TED key generation is a small share of upload time.
        breakdown = experiment_b1(file_bytes=128 << 10, profile_name="shactr")
        assert breakdown.keygen_share < 0.5

    def test_fast_vs_secure_profiles_run(self):
        fast = experiment_b1(file_bytes=24 << 10, profile_name="fast")
        secure = experiment_b1(file_bytes=24 << 10, profile_name="secure")
        # Both produce full breakdowns; AES-128/MD5 is the cheaper profile.
        assert fast.step_seconds["encryption"] <= \
            secure.step_seconds["encryption"] * 1.5


class TestExperimentB2:
    def test_ted_beats_blind_protocols(self):
        # Figure 7's ordering: TED >> blind RSA > blind BLS.
        ted = keygen_speed_ted(num_chunks=300, batch_size=100)
        key = rsa.generate_keypair(bits=1024, rng=random.Random(2))
        blind_rsa = keygen_speed_blind_rsa(num_chunks=30, key=key)
        blind_bls = keygen_speed_blind_bls(num_chunks=10)
        assert ted > blind_rsa > 0
        assert ted > blind_bls > 0
        assert ted > 10 * blind_bls

    def test_ted_keygen_over_tcp(self):
        speed = keygen_speed_ted(num_chunks=200, batch_size=100, use_tcp=True)
        assert speed > 0


class TestExperimentB3:
    @pytest.mark.parametrize("clients", [1, 2])
    def test_multi_client_runs(self, clients):
        result = experiment_b3(
            clients, file_bytes=128 << 10, batch_size=200
        )
        assert result.clients == clients
        assert result.upload_mb_s > 0
        assert result.download_mb_s > 0


class TestExperimentB4:
    def test_trace_replay_breakdown(self, tmp_path, fsl_small):
        snapshot = fsl_small.snapshots[0]
        breakdown = experiment_b4(
            snapshot,
            directory=str(tmp_path),
            batch_size=1000,
            container_bytes=256 << 10,
        )
        per_mb = breakdown.ms_per_mb()
        assert "chunking" not in per_mb  # trace replay skips chunking
        for step in ("fingerprinting", "hashing", "key seeding",
                     "key derivation", "encryption", "write"):
            assert step in per_mb
        assert breakdown.keygen_share < 0.5


class TestExperimentB5:
    def test_series_uploads_and_restores(self, tmp_path, snapshot_series):
        points = experiment_b5(
            snapshot_series[:3],
            directory=str(tmp_path),
            batch_size=1000,
            container_bytes=128 << 10,
        )
        assert len(points) == 3
        for point in points:
            assert point.upload_mb_s > 0
            assert point.download_mb_s > 0
