"""Security-analysis helpers (Eq. 9 sweeps and blowup recommendation)."""

import math
import random

import pytest

from repro.analysis.security import (
    recommend_blowup,
    scheme_comparison,
    success_curve,
)


class TestSuccessCurve:
    def test_monotone_in_samples(self):
        curve = success_curve(0.3, [10, 100, 1000, 10_000])
        probabilities = [point["success_probability"] for point in curve]
        assert probabilities == sorted(probabilities)
        assert probabilities[0] >= 0.5
        assert probabilities[-1] <= 1.0

    def test_zero_kld_flat_at_half(self):
        curve = success_curve(0.0, [1, 1000, 1_000_000])
        assert all(
            point["success_probability"] == pytest.approx(0.5)
            for point in curve
        )


class TestSchemeComparison:
    def test_paper_ratio(self):
        # §3.6's example: MLE 1.72 vs TED 0.26 → 6.6x the samples.
        rows = {
            r["scheme"]: r
            for r in scheme_comparison({"MLE": 1.72, "TED": 0.26})
        }
        assert rows["MLE"]["vs_baseline"] == pytest.approx(1.0)
        assert rows["TED"]["vs_baseline"] == pytest.approx(
            1.72 / 0.26, rel=1e-6
        )

    def test_ske_needs_infinite_samples(self):
        rows = {
            r["scheme"]: r
            for r in scheme_comparison({"MLE": 1.0, "SKE": 0.0})
        }
        assert math.isinf(rows["SKE"]["samples_needed"])

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            scheme_comparison({"TED": 0.3}, baseline="MLE")

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            scheme_comparison({"MLE": 0.0})


class TestRecommendBlowup:
    @pytest.fixture
    def frequencies(self):
        rng = random.Random(4)
        freqs = [1] * 800
        freqs += [rng.randrange(2, 40) for _ in range(150)]
        freqs += [rng.randrange(100, 800) for _ in range(10)]
        return freqs

    def test_recommends_feasible_minimum(self, frequencies):
        # Eq. 9 distinguishes with very few samples (the paper's point is
        # the *ratio* between schemes, not absolute hardness), so the
        # feasibility boundary lives at single-digit sample budgets.
        rec = recommend_blowup(
            frequencies, adversary_samples=2, tolerated_success=0.7
        )
        assert rec.feasible
        assert rec.adversary_success <= 0.7
        # The next-smaller candidate must NOT satisfy the tolerance —
        # minimality check.
        candidates = (1.01, 1.02, 1.05, 1.10, 1.15, 1.20, 1.30, 1.50, 2.00)
        smaller = [b for b in candidates if b < rec.blowup_factor]
        if smaller:
            prev = recommend_blowup(
                frequencies,
                adversary_samples=2,
                tolerated_success=0.7,
                candidates=smaller,
            )
            assert not prev.feasible

    def test_bigger_adversary_needs_bigger_b(self, frequencies):
        small = recommend_blowup(frequencies, adversary_samples=1)
        large = recommend_blowup(frequencies, adversary_samples=8)
        assert large.blowup_factor >= small.blowup_factor

    def test_infeasible_reported(self, frequencies):
        rec = recommend_blowup(
            frequencies,
            adversary_samples=10**12,
            tolerated_success=0.5,
            candidates=(1.01, 1.05),
        )
        assert not rec.feasible
        assert rec.blowup_factor == 1.05

    def test_validation(self, frequencies):
        with pytest.raises(ValueError):
            recommend_blowup(frequencies, 100, candidates=())
        with pytest.raises(ValueError):
            recommend_blowup(frequencies, 100, tolerated_success=0.4)
        with pytest.raises(ValueError):
            recommend_blowup(frequencies, -1)

    def test_tiny_adversary_allows_tiny_b(self, frequencies):
        rec = recommend_blowup(
            frequencies, adversary_samples=0, tolerated_success=0.6
        )
        assert rec.feasible
        assert rec.blowup_factor == 1.01
