"""Frequency analysis attack: TED must measurably blunt it."""

import random

import pytest

from repro.analysis.attack import (
    attack_scheme,
    compare_schemes_under_attack,
    frequency_analysis,
    rank_by_frequency,
)
from repro.analysis.tradeoff import make_fted
from repro.core.schemes import MLEScheme, SKEScheme


class TestRanking:
    def test_orders_by_frequency(self):
        observations = [b"a"] * 5 + [b"b"] * 3 + [b"c"]
        assert rank_by_frequency(observations) == [b"a", b"b", b"c"]

    def test_deterministic_tie_break(self):
        observations = [b"x", b"y", b"z"]
        assert rank_by_frequency(observations) == rank_by_frequency(
            list(reversed(observations))
        )


class TestFrequencyAnalysis:
    def test_perfect_attack_on_distinct_frequencies(self):
        # Cipher ids with unique frequencies + perfect auxiliary knowledge
        # → 100% inference.
        cipher = [b"C1"] * 5 + [b"C2"] * 3 + [b"C3"]
        aux = [b"P1"] * 5 + [b"P2"] * 3 + [b"P3"]
        truth = {b"C1": b"P1", b"C2": b"P2", b"C3": b"P3"}
        result = frequency_analysis(cipher, truth, aux)
        assert result.inference_rate == 1.0

    def test_empty_attack(self):
        result = frequency_analysis([], {}, [])
        assert result.inference_rate == 0.0


class TestAttackOnSchemes:
    def test_mle_leaks_under_identical_auxiliary(self, snapshot_small):
        # Adversary knows the exact plaintext distribution (worst case):
        # the top-frequency chunks, where ranks are distinctive, are
        # recovered at a high rate under deterministic encryption.
        result = attack_scheme(MLEScheme(), snapshot_small, snapshot_small)
        assert result.top_inference_rate > 0.3
        assert result.top_inference_rate > 10 * result.inference_rate

    def test_ske_resists(self, snapshot_small):
        result = attack_scheme(
            SKEScheme(rng=random.Random(1)), snapshot_small, snapshot_small
        )
        # All ciphertexts have frequency 1: rank matching is guesswork.
        assert result.inference_rate < 0.05
        assert result.top_inference_rate < 0.05

    def test_ted_blunts_the_attack(self, snapshot_small):
        rows = {
            row["scheme"]: row
            for row in compare_schemes_under_attack(
                [MLEScheme(), make_fted(1.2, 2**14, seed=5)],
                snapshot_small,
                snapshot_small,
            )
        }
        mle = rows["MLE"]["top_inference_rate"]
        ted = rows["FTED(b=1.2)"]["top_inference_rate"]
        assert ted < mle * 0.5

    def test_attack_with_prior_snapshot_auxiliary(self, snapshot_series):
        # More realistic: the auxiliary is the previous backup.
        result = attack_scheme(
            MLEScheme(), snapshot_series[1], snapshot_series[0]
        )
        assert 0.0 <= result.inference_rate <= 1.0
        assert result.inferred > 0


class TestLocalityAttack:
    def test_stronger_than_plain_frequency_analysis_on_mle(
        self, snapshot_series
    ):
        # Li et al. [DSN '17]: exploiting chunk locality raises the number
        # of correct inferences against deterministic encryption.
        from repro.analysis.attack import locality_attack_scheme

        target, auxiliary = snapshot_series[1], snapshot_series[0]
        plain = attack_scheme(MLEScheme(), target, auxiliary)
        augmented = locality_attack_scheme(
            MLEScheme(), target, auxiliary, seeds=30
        )
        assert augmented.correct >= plain.correct

    def test_ted_degrades_locality_attack(self, snapshot_series):
        from repro.analysis.attack import locality_attack_scheme

        target, auxiliary = snapshot_series[1], snapshot_series[0]
        mle = locality_attack_scheme(MLEScheme(), target, auxiliary, seeds=30)
        ted = locality_attack_scheme(
            make_fted(1.1, 2**14, seed=4), target, auxiliary, seeds=30
        )
        assert ted.correct < mle.correct

    def test_handles_tiny_streams(self):
        from repro.analysis.attack import locality_attack

        result = locality_attack([b"c1"], {b"c1": b"p1"}, [b"p1"], seeds=5)
        assert result.inferred >= 1
