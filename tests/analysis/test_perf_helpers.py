"""Unit tests for the performance-analysis data structures."""

import pytest

from repro.analysis.perf import UPLOAD_STEPS, Breakdown, keygen_speed_ted


class TestBreakdown:
    def _breakdown(self):
        return Breakdown(
            label="unit",
            data_bytes=2 << 20,  # 2 MiB
            step_seconds={
                "chunking": 0.2,
                "fingerprinting": 0.1,
                "hashing": 0.05,
                "key seeding": 0.03,
                "key derivation": 0.02,
                "encryption": 0.5,
                "write": 0.1,
            },
        )

    def test_ms_per_mb_normalization(self):
        per_mb = self._breakdown().ms_per_mb()
        # 0.2 s over 2 MiB → 100 ms/MiB.
        assert per_mb["chunking"] == pytest.approx(100.0)
        assert per_mb["encryption"] == pytest.approx(250.0)

    def test_ms_per_mb_covers_only_present_steps(self):
        breakdown = Breakdown(
            label="partial", data_bytes=1 << 20,
            step_seconds={"encryption": 1.0},
        )
        assert set(breakdown.ms_per_mb()) == {"encryption"}

    def test_keygen_share(self):
        breakdown = self._breakdown()
        total = sum(breakdown.step_seconds.values())
        expected = (0.05 + 0.03 + 0.02) / total
        assert breakdown.keygen_share == pytest.approx(expected)

    def test_keygen_share_empty(self):
        assert Breakdown(label="e", data_bytes=1).keygen_share == 0.0

    def test_upload_steps_order_matches_paper(self):
        assert UPLOAD_STEPS == (
            "chunking",
            "fingerprinting",
            "hashing",
            "key seeding",
            "key derivation",
            "encryption",
            "write",
        )


class TestKeygenSpeed:
    def test_inprocess_speed_positive(self):
        speed = keygen_speed_ted(num_chunks=100, batch_size=50)
        assert speed > 0
