"""Experiment A.* drivers: the paper's qualitative shapes must hold."""

import pytest

from repro.analysis.tradeoff import (
    difference_rates,
    evaluate_scheme,
    experiment_a1,
    experiment_a2,
    experiment_a3,
    experiment_a4,
    experiment_a5,
    make_bted,
    make_fted,
)
from repro.core.schemes import MLEScheme


@pytest.fixture(scope="module")
def a1_rows(fsl_small):
    return experiment_a1(
        fsl_small, ts=(20, 5), bs=(1.05, 1.2), sketch_width=2**14
    )


class TestExperimentA1:
    def test_row_schema(self, a1_rows):
        for row in a1_rows:
            assert {"scheme", "kld", "kld_ci95", "blowup", "blowup_ci95"} <= \
                set(row)

    def test_mle_exact_dedup_highest_kld(self, a1_rows):
        by_name = {row["scheme"]: row for row in a1_rows}
        mle = by_name["MLE"]
        assert mle["blowup"] == pytest.approx(1.0)
        assert mle["kld"] == max(row["kld"] for row in a1_rows)

    def test_ske_zero_kld_highest_blowup(self, a1_rows):
        by_name = {row["scheme"]: row for row in a1_rows}
        ske = by_name["SKE"]
        assert ske["kld"] == pytest.approx(0.0, abs=1e-9)
        assert ske["blowup"] == max(row["blowup"] for row in a1_rows)

    def test_ted_dominates_minhash(self, a1_rows):
        # The paper's headline: TED beats MinHash on both axes. Our
        # synthetic traces have weaker chunk locality than real FSL, so
        # MinHash lands at a lower KLD than the paper's (it pays more
        # storage for it); we assert the robust form: every TED variant
        # stores less than MinHash, and the tuned FTED variants also leak
        # less, i.e. MinHash is Pareto-dominated.
        by_name = {row["scheme"]: row for row in a1_rows}
        minhash = by_name["MinHash"]
        for name, row in by_name.items():
            if name.startswith(("BTED", "FTED")):
                assert row["blowup"] < minhash["blowup"], name
        fted_best = by_name["FTED(b=1.2)"]
        assert fted_best["kld"] < minhash["kld"]
        assert fted_best["blowup"] < minhash["blowup"]

    def test_fted_blowup_tracks_b(self, a1_rows):
        by_name = {row["scheme"]: row for row in a1_rows}
        assert by_name["FTED(b=1.05)"]["blowup"] <= 1.05 + 0.05
        assert by_name["FTED(b=1.2)"]["blowup"] <= 1.2 + 0.05

    def test_fted_kld_decreases_with_b(self, a1_rows):
        by_name = {row["scheme"]: row for row in a1_rows}
        assert by_name["FTED(b=1.2)"]["kld"] < by_name["FTED(b=1.05)"]["kld"]

    def test_bted_kld_increases_with_t(self, a1_rows):
        by_name = {row["scheme"]: row for row in a1_rows}
        assert by_name["BTED(t=20)"]["kld"] >= by_name["BTED(t=5)"]["kld"]

    def test_fted_reduces_mle_kld_substantially(self, a1_rows):
        # Paper: up to 84.7% reduction at b = 1.2; require at least half.
        by_name = {row["scheme"]: row for row in a1_rows}
        assert by_name["FTED(b=1.2)"]["kld"] < 0.5 * by_name["MLE"]["kld"]


class TestExperimentA2:
    def test_smaller_width_more_overestimation(self, fsl_small):
        rows = experiment_a2(
            fsl_small, widths=(2**8, 2**14), bs=(1.2,), seed=3
        )
        narrow = next(r for r in rows if r["w"] == 2**8)
        wide = next(r for r in rows if r["w"] == 2**14)
        # Figure 3: smaller w → larger t → less blowup, more KLD.
        assert narrow["blowup"] <= wide["blowup"] + 1e-9
        assert narrow["kld"] >= wide["kld"] - 1e-9

    def test_conservative_ablation_runs(self, fsl_small):
        rows = experiment_a2(
            fsl_small, widths=(2**10,), bs=(1.1,), conservative=True
        )
        assert len(rows) == 1


class TestExperimentA3:
    def test_probabilistic_vs_deterministic(self, fsl_small):
        result = experiment_a3(fsl_small, bs=(1.05, 1.2), sketch_width=2**14)
        for row in result["comparison"]:
            # Figure 4: probabilistic keygen trades slightly more KLD for
            # slightly less blowup.
            assert row["kld_probabilistic"] >= row["kld_deterministic"] * 0.8
            assert row["blowup_probabilistic"] <= \
                row["blowup_deterministic"] + 0.02

    def test_difference_rates_increase_with_frequency(self, fsl_small):
        rates = difference_rates(
            lambda seed: make_fted(1.05, 2**14, seed=seed),
            fsl_small.snapshots[0],
            percentiles=(20, 100),
        )
        # Figure 4(e,f): high-frequency chunks differ more across runs.
        # (Magnitudes are distribution-dependent — see EXPERIMENTS.md A.3.)
        assert rates[20] >= rates[100]
        assert rates[20] > 0

    def test_deterministic_difference_rate_zero(self, fsl_small):
        rates = difference_rates(
            lambda seed: make_fted(1.05, 2**14, seed=7, probabilistic=False),
            fsl_small.snapshots[0],
            percentiles=(100,),
        )
        assert rates[100] == 0.0


class TestAccumulatedDifferenceRates:
    def test_accumulation_raises_difference_rates(self, snapshot_series):
        from repro.analysis.tradeoff import accumulated_difference_rates

        accumulated = accumulated_difference_rates(
            snapshot_series, b=1.05, sketch_width=2**14,
            percentiles=(20, 100),
        )
        per_snapshot = difference_rates(
            lambda seed: make_fted(1.05, 2**14, seed=seed),
            snapshot_series[-1],
            percentiles=(20, 100),
        )
        # A key manager that saw the whole series spreads duplicates much
        # more aggressively than a per-snapshot one (EXPERIMENTS.md A.3).
        assert accumulated[20] >= per_snapshot[20]
        assert accumulated[20] > 0.1

    def test_requires_a_series(self, snapshot_small):
        from repro.analysis.tradeoff import accumulated_difference_rates

        with pytest.raises(ValueError):
            accumulated_difference_rates([snapshot_small])


class TestExperimentA4:
    def test_fted_controls_variance(self, fsl_small):
        result = experiment_a4(fsl_small, t=5, b=1.05, sketch_width=2**14)
        bted_spread = max(result["bted_blowup"]) - min(result["bted_blowup"])
        fted_spread = max(result["fted_blowup"]) - min(result["fted_blowup"])
        # Figure 5: FTED pins blowup near b; BTED varies across snapshots.
        assert fted_spread <= bted_spread + 1e-9
        assert max(result["fted_blowup"]) <= 1.05 + 0.06

    def test_series_sorted(self, fsl_small):
        result = experiment_a4(fsl_small, sketch_width=2**14)
        for key, series in result.items():
            assert series == sorted(series), key


class TestExperimentA5:
    def test_batching_rows(self, fsl_small):
        rows = experiment_a5(
            fsl_small,
            bs=(1.05,),
            batch_sizes=(None, 500),
            sketch_width=2**14,
        )
        nil = next(r for r in rows if r["batch_size"] == 0)
        batched = next(r for r in rows if r["batch_size"] == 500)
        # Figure 6: batching costs a little extra blowup (t starts at 1).
        assert batched["blowup"] >= nil["blowup"] - 0.02


class TestEvaluateScheme:
    def test_summary_statistics(self, fsl_small):
        summary = evaluate_scheme(MLEScheme(), fsl_small)
        assert len(summary.klds) == len(fsl_small)
        assert summary.blowup_mean == pytest.approx(1.0)
        assert summary.kld_ci >= 0
        row = summary.as_row()
        assert row["scheme"] == "MLE"
