"""The scheme zoo: per-scheme security/efficiency behaviour."""

import random
from collections import Counter

import pytest

from repro.core.schemes import (
    MLEScheme,
    MinHashScheme,
    SKEScheme,
    TedScheme,
)
from repro.core.ted import TedKeyManager

_W = 2**12


def _ted(t=None, b=None, seed=1, probabilistic=True, batch_size=None):
    return TedScheme(
        TedKeyManager(
            secret=b"zoo-secret",
            t=t,
            blowup_factor=b,
            batch_size=batch_size,
            sketch_width=_W,
            probabilistic=probabilistic,
            rng=random.Random(seed),
        )
    )


@pytest.fixture(scope="module")
def records():
    # A realistic backup-like stream: mostly unique chunks, a Zipf-skewed
    # popular head, and locality runs from duplicated files — the frequency
    # profile the paper's trade-off behaviour depends on.
    rng = random.Random(3)
    stream = []
    unique_id = 0
    files = []
    for _ in range(40):
        if files and rng.random() < 0.45:
            file = list(rng.choice(files))
            for _ in range(2):
                file[rng.randrange(len(file))] = "u-%d" % unique_id
                unique_id += 1
        else:
            file = []
            for _ in range(40):
                if rng.random() < 0.25:
                    rank = min(int(rng.paretovariate(1.2)), 50)
                    file.append("p-%d" % rank)
                else:
                    file.append("u-%d" % unique_id)
                    unique_id += 1
        files.append(file)
        stream.extend(file)
    return [
        (fp.encode(), 4096 + (sum(fp.encode()) % 4096)) for fp in stream
    ]


class TestMLE:
    def test_exact_dedup(self, records):
        output = MLEScheme().process(records)
        assert output.blowup() == 1.0
        assert output.ciphertext_unique == output.plaintext_unique

    def test_preserves_frequency_distribution(self, records):
        output = MLEScheme().process(records)
        plain = sorted(Counter(fp for fp, _ in records).values())
        cipher = sorted(output.ciphertext_frequencies())
        assert plain == cipher

    def test_deterministic_across_runs(self, records):
        a = MLEScheme().process(records)
        b = MLEScheme().process(records)
        assert a.ciphertext_ids == b.ciphertext_ids

    def test_secret_changes_ciphertexts(self, records):
        a = MLEScheme(secret=b"s1").process(records)
        b = MLEScheme(secret=b"s2").process(records)
        assert a.ciphertext_ids != b.ciphertext_ids


class TestCE:
    def test_exact_dedup_like_mle(self, records):
        from repro.core.schemes import CEScheme

        output = CEScheme().process(records)
        assert output.blowup() == 1.0
        assert sorted(output.ciphertext_frequencies()) == sorted(
            MLEScheme().process(records).ciphertext_frequencies()
        )

    def test_offline_bruteforce_surface(self, records):
        # Anyone who can guess a chunk can derive its CE key offline —
        # the §2.1 weakness server-aided MLE fixes.
        from repro.core.schemes import CEScheme

        scheme = CEScheme()
        fingerprint = records[0][0]
        attacker_key = CEScheme.offline_bruteforce_key(fingerprint)
        assert attacker_key == scheme.key_for(records[0], 0)

    def test_mle_secret_blocks_offline_bruteforce(self, records):
        # The server-aided variant's keys cannot be recomputed from the
        # chunk alone.
        from repro.core.schemes import CEScheme

        fingerprint = records[0][0]
        assert MLEScheme().key_for(records[0], 0) != \
            CEScheme.offline_bruteforce_key(fingerprint)


class TestSKE:
    def test_no_dedup_at_all(self, records):
        output = SKEScheme(rng=random.Random(1)).process(records)
        assert output.ciphertext_unique == len(records)

    def test_zero_kld(self, records):
        output = SKEScheme(rng=random.Random(1)).process(records)
        assert output.kld() == pytest.approx(0.0)

    def test_blowup_equals_dedup_factor(self, records):
        output = SKEScheme(rng=random.Random(1)).process(records)
        expected = len(records) / len({fp for fp, _ in records})
        assert output.blowup() == pytest.approx(expected)


class TestMinHash:
    def test_intermediate_behaviour(self, records):
        mle = MLEScheme().process(records)
        minhash = MinHashScheme(
            min_segment=8 << 10, avg_segment=16 << 10, max_segment=32 << 10
        ).process(records)
        # Some dedup lost, some KLD gained back.
        assert minhash.blowup() >= 1.0
        assert minhash.kld() <= mle.kld() + 1e-9

    def test_deterministic(self, records):
        scheme = MinHashScheme(
            min_segment=8 << 10, avg_segment=16 << 10, max_segment=32 << 10
        )
        assert scheme.process(records).ciphertext_ids == scheme.process(
            records
        ).ciphertext_ids

    def test_segment_boundaries_respect_max(self, records):
        scheme = MinHashScheme(
            min_segment=4 << 10, avg_segment=8 << 10, max_segment=16 << 10
        )
        boundaries = scheme._segment_boundaries(records)
        assert boundaries[-1] == len(records)
        start = 0
        for end in boundaries:
            segment_bytes = sum(size for _, size in records[start:end])
            # max_segment plus at most one chunk of overshoot.
            assert segment_bytes <= (16 << 10) + 16384
            start = end

    def test_validation(self):
        with pytest.raises(ValueError):
            MinHashScheme(min_segment=10, avg_segment=5, max_segment=20)


class TestTed:
    def test_bted_blowup_between_mle_and_ske(self, records):
        output = _ted(t=5).process(records)
        ske_blowup = len(records) / len({fp for fp, _ in records})
        assert 1.0 <= output.blowup() <= ske_blowup

    def test_larger_t_less_blowup(self, records):
        loose = _ted(t=20).process(records).blowup()
        tight = _ted(t=2).process(records).blowup()
        assert tight >= loose

    def test_larger_t_more_kld(self, records):
        loose = _ted(t=20).process(records).kld()
        tight = _ted(t=2).process(records).kld()
        assert loose >= tight

    def test_fted_blowup_tracks_b(self, records):
        for b in (1.05, 1.2):
            output = _ted(b=b).process(records)
            assert output.blowup() <= b + 0.05

    def test_fted_reduces_kld_vs_mle(self, records):
        mle = MLEScheme().process(records)
        fted = _ted(b=1.2).process(records)
        assert fted.kld() < mle.kld()

    def test_deterministic_variant_reproducible(self, records):
        a = _ted(b=1.1, probabilistic=False, seed=1).process(records)
        b = _ted(b=1.1, probabilistic=False, seed=999).process(records)
        assert a.ciphertext_ids == b.ciphertext_ids

    def test_probabilistic_variant_differs_across_runs(self, records):
        a = _ted(b=1.1, seed=1).process(records)
        b = _ted(b=1.1, seed=2).process(records)
        assert a.ciphertext_ids != b.ciphertext_ids

    def test_ciphertext_count_never_below_plaintext(self, records):
        output = _ted(b=1.05).process(records)
        assert output.ciphertext_unique >= output.plaintext_unique

    def test_batched_fted_runs(self, records):
        output = _ted(b=1.1, batch_size=50).process(records)
        assert output.blowup() >= 1.0

    def test_scheme_names(self):
        assert _ted(t=7).name == "BTED(t=7)"
        assert _ted(b=1.15).name == "FTED(b=1.15)"

    def test_total_copies_preserved(self, records):
        output = _ted(b=1.1).process(records)
        assert sum(output.ciphertext_frequencies()) == len(records)


class TestSchemeOutput:
    def test_byte_blowup_consistent_with_sizes(self, records):
        output = MLEScheme().process(records)
        assert output.blowup_bytes() == pytest.approx(1.0)

    def test_total_bytes(self, records):
        output = MLEScheme().process(records)
        assert output.total_bytes == sum(size for _, size in records)
