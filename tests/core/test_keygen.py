"""Key derivation (Eqs. 1-4)."""

import random

import pytest

from repro.core.keygen import (
    KeySeedGenerator,
    basic_key,
    derive_key,
    frequency_bucket,
)

_HASHES = [17, 42, 99, 7]


class TestFrequencyBucket:
    @pytest.mark.parametrize(
        "f,t,expected", [(0, 5, 0), (4, 5, 0), (5, 5, 1), (14, 5, 2), (7, 1, 7)]
    )
    def test_floor_division(self, f, t, expected):
        assert frequency_bucket(f, t) == expected

    def test_rejects_bad_t(self):
        with pytest.raises(ValueError):
            frequency_bucket(1, 0)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            frequency_bucket(-1, 5)


class TestBasicKey:
    def test_deterministic(self):
        assert basic_key(b"s", b"fp", 7, 5) == basic_key(b"s", b"fp", 7, 5)

    def test_same_bucket_same_key(self):
        # f = 5 and f = 9 both land in bucket 1 with t = 5 (Eq. 1).
        assert basic_key(b"s", b"fp", 5, 5) == basic_key(b"s", b"fp", 9, 5)

    def test_bucket_boundary_changes_key(self):
        assert basic_key(b"s", b"fp", 4, 5) != basic_key(b"s", b"fp", 5, 5)

    def test_secret_matters(self):
        assert basic_key(b"s1", b"fp", 1, 5) != basic_key(b"s2", b"fp", 1, 5)

    def test_fingerprint_matters(self):
        assert basic_key(b"s", b"fp1", 1, 5) != basic_key(b"s", b"fp2", 1, 5)

    def test_md5_profile_length(self):
        assert len(basic_key(b"s", b"fp", 1, 5, algorithm="md5")) == 16


class TestKeySeedGenerator:
    def test_candidate_deterministic(self):
        gen = KeySeedGenerator(secret=b"kappa")
        assert gen.candidate(_HASHES, 3) == gen.candidate(_HASHES, 3)

    def test_candidate_index_matters(self):
        gen = KeySeedGenerator(secret=b"kappa")
        assert gen.candidate(_HASHES, 0) != gen.candidate(_HASHES, 1)

    def test_candidate_hashes_matter(self):
        gen = KeySeedGenerator(secret=b"kappa")
        assert gen.candidate([1, 2, 3, 4], 0) != gen.candidate([1, 2, 3, 5], 0)

    def test_candidate_rejects_negative_index(self):
        with pytest.raises(ValueError):
            KeySeedGenerator(secret=b"k").candidate(_HASHES, -1)

    def test_rejects_empty_secret(self):
        with pytest.raises(ValueError):
            KeySeedGenerator(secret=b"")

    def test_deterministic_mode_returns_k_x(self):
        gen = KeySeedGenerator(secret=b"kappa", probabilistic=False)
        seed = gen.select_seed(_HASHES, frequency=12, t=5)  # x = 2
        assert seed == gen.candidate(_HASHES, 2)

    def test_probabilistic_seed_in_candidate_set(self):
        gen = KeySeedGenerator(
            secret=b"kappa", probabilistic=True, rng=random.Random(0)
        )
        candidates = {gen.candidate(_HASHES, i) for i in range(4)}
        for _ in range(100):
            assert gen.select_seed(_HASHES, frequency=15, t=5) in candidates

    def test_probabilistic_uses_whole_candidate_set(self):
        gen = KeySeedGenerator(
            secret=b"kappa", probabilistic=True, rng=random.Random(0)
        )
        seen = {
            gen.select_seed(_HASHES, frequency=15, t=5) for _ in range(300)
        }
        assert len(seen) == 4  # x = 3 → candidates {k0..k3}

    def test_zero_bucket_always_k0(self):
        gen = KeySeedGenerator(
            secret=b"kappa", probabilistic=True, rng=random.Random(0)
        )
        k0 = gen.candidate(_HASHES, 0)
        for _ in range(20):
            assert gen.select_seed(_HASHES, frequency=3, t=5) == k0

    def test_reproducible_with_seeded_rng(self):
        a = KeySeedGenerator(secret=b"k", rng=random.Random(9))
        b = KeySeedGenerator(secret=b"k", rng=random.Random(9))
        seq_a = [a.select_seed(_HASHES, 50, 5) for _ in range(20)]
        seq_b = [b.select_seed(_HASHES, 50, 5) for _ in range(20)]
        assert seq_a == seq_b


class TestDeriveKey:
    def test_deterministic(self):
        assert derive_key(b"seed", b"fp") == derive_key(b"seed", b"fp")

    def test_binds_fingerprint(self):
        assert derive_key(b"seed", b"fp1") != derive_key(b"seed", b"fp2")

    def test_binds_seed(self):
        assert derive_key(b"seed1", b"fp") != derive_key(b"seed2", b"fp")

    def test_key_is_not_the_seed(self):
        # The key manager sees the seed but must not know the key (Eq. 4).
        assert derive_key(b"seed", b"fp") != b"seed"

    def test_rejects_empty_seed(self):
        with pytest.raises(ValueError):
            derive_key(b"", b"fp")

    def test_md5_length(self):
        assert len(derive_key(b"s", b"fp", algorithm="md5")) == 16
