"""KLD (Eq. 5) and attack-success (Eq. 9) metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.kld import (
    attack_success_probability,
    kld_from_frequencies,
    kld_from_observations,
    samples_for_success,
    storage_blowup,
)


class TestKld:
    def test_uniform_distribution_is_zero(self):
        assert kld_from_frequencies([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_single_chunk_is_zero(self):
        assert kld_from_frequencies([17]) == pytest.approx(0.0)

    def test_known_value_two_point(self):
        # p = (0.75, 0.25): KLD = 0.75 ln 1.5 + 0.25 ln 0.5.
        expected = 0.75 * math.log(1.5) + 0.25 * math.log(0.5)
        assert kld_from_frequencies([3, 1]) == pytest.approx(expected)

    def test_skew_increases_kld(self):
        mild = kld_from_frequencies([4, 3, 3, 2])
        heavy = kld_from_frequencies([9, 1, 1, 1])
        assert heavy > mild

    def test_scale_invariance(self):
        assert kld_from_frequencies([2, 4, 6]) == pytest.approx(
            kld_from_frequencies([20, 40, 60])
        )

    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=100))
    def test_non_negative(self, freqs):
        assert kld_from_frequencies(freqs) >= -1e-12

    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=100))
    def test_bounded_by_log_n(self, freqs):
        assert kld_from_frequencies(freqs) <= math.log(len(freqs)) + 1e-9

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kld_from_frequencies([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            kld_from_frequencies([1, 0])

    def test_from_observations(self):
        obs = [b"a", b"a", b"a", b"b"]
        assert kld_from_observations(obs) == pytest.approx(
            kld_from_frequencies([3, 1])
        )

    def test_from_observations_empty(self):
        with pytest.raises(ValueError):
            kld_from_observations([])


class TestAttackSuccess:
    def test_zero_kld_is_coin_flip(self):
        assert attack_success_probability(10_000, 0.0) == pytest.approx(0.5)

    def test_zero_samples_is_coin_flip(self):
        assert attack_success_probability(0, 1.5) == pytest.approx(0.5)

    def test_monotone_in_samples(self):
        low = attack_success_probability(100, 0.5)
        high = attack_success_probability(10_000, 0.5)
        assert 0.5 < low < high <= 1.0

    def test_monotone_in_kld(self):
        low = attack_success_probability(1000, 0.1)
        high = attack_success_probability(1000, 2.0)
        assert low < high

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            attack_success_probability(-1, 0.5)
        with pytest.raises(ValueError):
            attack_success_probability(1, -0.5)

    def test_samples_for_success_inverse(self):
        kld = 0.26
        samples = samples_for_success(0.9, kld)
        assert attack_success_probability(samples, kld) == pytest.approx(
            0.9, abs=1e-6
        )

    def test_sample_ratio_matches_kld_ratio(self):
        # The §3.6 argument: samples scale as 1/KLD for fixed success.
        ratio = samples_for_success(0.9, 0.26) / samples_for_success(0.9, 1.72)
        assert ratio == pytest.approx(1.72 / 0.26)

    def test_samples_for_success_validation(self):
        with pytest.raises(ValueError):
            samples_for_success(0.4, 1.0)
        with pytest.raises(ValueError):
            samples_for_success(0.9, 0.0)


class TestStorageBlowup:
    def test_exact_dedup(self):
        assert storage_blowup(100, 100) == 1.0

    def test_blowup(self):
        assert storage_blowup(120, 100) == pytest.approx(1.2)

    def test_rejects_shrinkage(self):
        with pytest.raises(ValueError):
            storage_blowup(99, 100)

    def test_rejects_zero_plaintext(self):
        with pytest.raises(ValueError):
            storage_blowup(0, 0)
