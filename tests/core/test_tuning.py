"""Automated parameter configuration (Eqs. 6-8) — closed form vs numeric."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import minimize

from repro.core.kld import kld_from_frequencies
from repro.core.tuning import (
    TuningSolution,
    configure_t,
    solve,
    target_unique_ciphertexts,
)


def _numeric_optimum(freqs, b):
    """Direct SLSQP solution of the relaxed Eq. 6 problem."""
    freqs = sorted(freqs)
    n = len(freqs)
    total = sum(freqs)
    n_star = max(n, min(int(round(n * b)), total))

    def kld(f):
        p = f / total
        terms = np.where(p > 1e-15, p * np.log(np.maximum(p, 1e-15)), 0.0)
        return math.log(n_star) + terms.sum()

    bounds = [(0, freqs[i]) for i in range(n)] + [(0, total)] * (n_star - n)
    x0 = np.minimum(np.full(n_star, total / n_star), [b_[1] for b_ in bounds])
    x0 *= total / x0.sum()
    x0 = np.minimum(x0, [b_[1] for b_ in bounds])
    result = minimize(
        kld,
        x0,
        bounds=bounds,
        constraints=[{"type": "eq", "fun": lambda f: f.sum() - total}],
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-12},
    )
    return result.fun


class TestTargetUniqueCiphertexts:
    def test_basic_scaling(self):
        assert target_unique_ciphertexts(100, 1000, 1.2) == 120

    def test_clamped_to_total_copies(self):
        # Cannot have more unique ciphertexts than chunk copies — the FSL
        # saturation effect in Experiment A.1.
        assert target_unique_ciphertexts(100, 110, 1.5) == 110

    def test_never_below_n(self):
        assert target_unique_ciphertexts(100, 1000, 1.0) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            target_unique_ciphertexts(0, 10, 1.1)
        with pytest.raises(ValueError):
            target_unique_ciphertexts(10, 5, 1.1)
        with pytest.raises(ValueError):
            target_unique_ciphertexts(10, 20, 0.9)


class TestClosedForm:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_numeric_optimum(self, seed):
        rng = random.Random(seed)
        freqs = [rng.randrange(1, 60) for _ in range(rng.randrange(3, 12))]
        b = 1.0 + rng.random() * 0.6
        closed = solve(freqs, b).predicted_kld
        numeric = _numeric_optimum(freqs, b)
        assert closed == pytest.approx(numeric, abs=1e-5)

    def test_solution_satisfies_constraints(self):
        freqs = [1, 2, 3, 10, 50]
        solution = solve(freqs, 1.3)
        optimal = solution.optimal_frequencies
        assert len(optimal) == solution.n_star
        assert sum(optimal) == pytest.approx(sum(freqs))
        for original, capped in zip(sorted(freqs)[: solution.m], optimal):
            assert capped == original

    def test_optimal_frequencies_sorted(self):
        solution = solve([1, 5, 9, 30, 100], 1.2)
        optimal = solution.optimal_frequencies
        assert optimal == sorted(optimal)

    def test_t_is_ceiling_of_tail_share(self):
        freqs = [1, 1, 1, 9]  # total 12
        solution = solve(freqs, 1.25)  # n* = 5
        # m = 3 (the three 1s fit), tail share = 9 / (5 - 3) = 4.5 → t = 5.
        assert solution.m == 3
        assert solution.t == 5

    def test_b_one_reduces_to_mle_like_cap(self):
        freqs = [1, 2, 3, 100]
        solution = solve(freqs, 1.0)
        # n* = n: the cap is the maximum frequency — nothing is split.
        assert solution.n_star == len(freqs)
        assert solution.t == 100

    def test_all_unique_chunks(self):
        solution = solve([1] * 50, 1.2)
        assert solution.t == 1
        assert solution.n_star == 50  # clamped: no duplicates to split

    def test_uniform_duplicates(self):
        solution = solve([4] * 10, 1.5)
        assert solution.n_star == 15
        # Every chunk capped at the even share 40/15 → t = 3.
        assert solution.t == 3
        assert solution.m == 0

    def test_monotone_kld_in_b(self):
        rng = random.Random(5)
        freqs = [rng.randrange(1, 100) for _ in range(50)]
        klds = [solve(freqs, b).predicted_kld for b in (1.0, 1.1, 1.3, 1.6)]
        assert klds == sorted(klds, reverse=True)
        assert klds[0] > klds[-1]  # strictly improves with budget

    def test_t_non_increasing_in_b(self):
        rng = random.Random(6)
        freqs = [rng.randrange(1, 100) for _ in range(50)]
        ts = [solve(freqs, b).t for b in (1.0, 1.1, 1.3, 1.6, 2.0)]
        assert ts == sorted(ts, reverse=True)

    def test_configure_t_wrapper(self):
        freqs = [1, 2, 3, 10]
        assert configure_t(freqs, 1.2) == solve(freqs, 1.2).t

    def test_t_at_least_one(self):
        assert solve([1], 1.0).t >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            solve([], 1.2)
        with pytest.raises(ValueError):
            solve([0, 1], 1.2)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(1, 500), min_size=1, max_size=60),
        st.floats(1.0, 3.0),
    )
    def test_invariants_property(self, freqs, b):
        solution = solve(freqs, b)
        assert solution.t >= 1
        assert len(freqs) <= solution.n_star <= sum(freqs)
        assert sum(solution.optimal_frequencies) == pytest.approx(sum(freqs))
        assert solution.predicted_kld >= -1e-9
        # Predicted KLD can never exceed the uncapped (MLE) KLD.
        assert solution.predicted_kld <= kld_from_frequencies(freqs) + 1e-9
