"""TED key manager: BTED/FTED modes, batching, reset."""

import random

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.murmur3 import short_hashes

_W = 2**12


def _hashes(item: bytes):
    return short_hashes(item, 4, _W)


class TestConstruction:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            TedKeyManager(secret=b"s")
        with pytest.raises(ValueError):
            TedKeyManager(secret=b"s", t=5, blowup_factor=1.1)

    def test_bted_mode(self):
        km = TedKeyManager(secret=b"s", t=5, sketch_width=_W)
        assert not km.is_fted
        assert km.t == 5

    def test_fted_starts_at_t_one(self):
        km = TedKeyManager(secret=b"s", blowup_factor=1.1, sketch_width=_W)
        assert km.is_fted
        assert km.t == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TedKeyManager(secret=b"s", t=0)
        with pytest.raises(ValueError):
            TedKeyManager(secret=b"s", blowup_factor=0.9)
        with pytest.raises(ValueError):
            TedKeyManager(secret=b"s", t=5, batch_size=100)
        with pytest.raises(ValueError):
            TedKeyManager(secret=b"s", blowup_factor=1.1, batch_size=0)


class TestSeedGeneration:
    def test_large_t_behaves_like_mle(self):
        # With t far above any frequency, every duplicate stays in bucket 0
        # and gets the same seed — MLE behaviour.
        km = TedKeyManager(
            secret=b"s", t=10_000, sketch_width=_W, rng=random.Random(1)
        )
        seeds = {km.generate_seed(_hashes(b"chunk")) for _ in range(50)}
        assert len(seeds) == 1

    def test_t_one_spreads_duplicates(self):
        km = TedKeyManager(
            secret=b"s", t=1, sketch_width=_W, rng=random.Random(1)
        )
        seeds = [km.generate_seed(_hashes(b"chunk")) for _ in range(60)]
        # t = 1 approaches SKE: many distinct seeds.
        assert len(set(seeds)) > 10

    def test_distinct_chunks_distinct_seeds(self):
        km = TedKeyManager(secret=b"s", t=100, sketch_width=_W)
        assert km.generate_seed(_hashes(b"a")) != km.generate_seed(
            _hashes(b"b")
        )

    def test_request_counter(self):
        km = TedKeyManager(secret=b"s", t=5, sketch_width=_W)
        km.generate_seeds([_hashes(b"a"), _hashes(b"b")])
        assert km.stats.requests == 2

    def test_reproducible_with_seeded_rng(self):
        def run():
            km = TedKeyManager(
                secret=b"s", t=2, sketch_width=_W, rng=random.Random(7)
            )
            return [km.generate_seed(_hashes(b"c")) for _ in range(30)]

        assert run() == run()


class TestTuning:
    def test_tune_from_frequencies_sets_t(self):
        km = TedKeyManager(secret=b"s", blowup_factor=1.25, sketch_width=_W)
        t = km.tune_from_frequencies([1, 1, 1, 9])
        assert t == km.t == 5

    def test_bted_refuses_tuning(self):
        km = TedKeyManager(secret=b"s", t=5, sketch_width=_W)
        with pytest.raises(RuntimeError):
            km.tune_from_frequencies([1, 2, 3])

    def test_batch_mode_retunes(self):
        km = TedKeyManager(
            secret=b"s",
            blowup_factor=1.05,
            batch_size=50,
            sketch_width=_W,
            rng=random.Random(1),
        )
        # 100 requests over duplicated chunks → two batch boundaries.
        for i in range(100):
            km.generate_seed(_hashes(b"chunk-%d" % (i % 10)))
        assert km.stats.batches_tuned == 2
        assert km.t >= 1
        assert len(km.stats.t_history) == 2

    def test_no_batching_means_no_auto_tune(self):
        km = TedKeyManager(secret=b"s", blowup_factor=1.05, sketch_width=_W)
        for i in range(100):
            km.generate_seed(_hashes(b"chunk-%d" % (i % 10)))
        assert km.stats.batches_tuned == 0
        assert km.t == 1

    def test_batched_soak_keeps_tracked_frequencies_bounded(self):
        """Regression: ``_freq_by_identity`` must be bounded by the
        batch's distinct-chunk count, not the stream length — and must be
        empty right after a batch boundary (stale entries from old
        batches would otherwise skew every later ``tuning.solve``)."""
        batch_size = 200
        distinct_per_batch = 40
        km = TedKeyManager(
            secret=b"s",
            blowup_factor=1.05,
            batch_size=batch_size,
            sketch_width=_W,
            rng=random.Random(3),
        )
        peak = 0
        for batch_idx in range(5):  # 5 duplicate-heavy batches
            for i in range(batch_size):
                km.generate_seed(
                    _hashes(
                        b"b%d-chunk-%d" % (batch_idx, i % distinct_per_batch)
                    )
                )
                peak = max(peak, len(km._freq_by_identity))
            # Boundary just passed: the tracked map was consumed.
            assert len(km._freq_by_identity) == 0
        assert km.stats.batches_tuned == 5
        # Bounded by one batch's distinct chunks (1000 requests, 200
        # distinct identities overall — the old code kept all of them).
        assert peak <= distinct_per_batch

    def test_duplicate_heavy_stream_raises_t(self):
        km = TedKeyManager(
            secret=b"s",
            blowup_factor=1.05,
            batch_size=100,
            sketch_width=_W,
            rng=random.Random(1),
        )
        for _ in range(100):
            km.generate_seed(_hashes(b"hot-chunk"))
        # One chunk with 100 copies and b=1.05 → t must be large.
        assert km.t > 10


class TestClone:
    def test_clone_preserves_frequency_state(self):
        km = TedKeyManager(
            secret=b"s", t=10_000, sketch_width=_W, rng=random.Random(1)
        )
        for _ in range(7):
            km.generate_seed(_hashes(b"chunk"))
        twin = km.clone(rng=random.Random(2))
        assert twin.sketch.estimate(_hashes(b"chunk")) == 7
        assert twin.sketch.total == km.sketch.total
        assert twin.t == km.t

    def test_clone_is_independent(self):
        km = TedKeyManager(secret=b"s", t=5, sketch_width=_W)
        km.generate_seed(_hashes(b"a"))
        twin = km.clone()
        twin.generate_seed(_hashes(b"a"))
        assert twin.sketch.estimate(_hashes(b"a")) == 2
        assert km.sketch.estimate(_hashes(b"a")) == 1

    def test_clones_diverge_probabilistically(self):
        km = TedKeyManager(
            secret=b"s", t=1, sketch_width=_W, rng=random.Random(1)
        )
        for _ in range(30):
            km.generate_seed(_hashes(b"hot"))
        a = km.clone(rng=random.Random(100))
        b = km.clone(rng=random.Random(200))
        seeds_a = [a.generate_seed(_hashes(b"hot")) for _ in range(20)]
        seeds_b = [b.generate_seed(_hashes(b"hot")) for _ in range(20)]
        assert seeds_a != seeds_b
        # ... but the candidate sets are identical (same secret/state), so
        # the seed values come from the same pool.
        assert set(seeds_a) & set(seeds_b)

    def test_clone_fted_keeps_tuning(self):
        km = TedKeyManager(secret=b"s", blowup_factor=1.1, sketch_width=_W)
        km.tune_from_frequencies([1, 1, 50])
        twin = km.clone()
        assert twin.is_fted
        assert twin.t == km.t


class TestReset:
    def test_reset_clears_frequencies(self):
        km = TedKeyManager(
            secret=b"s", t=10_000, sketch_width=_W, rng=random.Random(1)
        )
        first = km.generate_seed(_hashes(b"chunk"))
        km.reset()
        again = km.generate_seed(_hashes(b"chunk"))
        assert first == again  # same frequency state after reset
        assert km.sketch.total == 1

    def test_reset_restores_fted_t(self):
        km = TedKeyManager(secret=b"s", blowup_factor=1.05, sketch_width=_W)
        km.tune_from_frequencies([1, 1, 50])
        assert km.t > 1
        km.reset()
        assert km.t == 1
