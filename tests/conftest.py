"""Shared fixtures: small synthetic datasets and tuned-down components.

Everything here is scaled for test speed (snapshots of a few thousand
chunks, kilobyte containers) while keeping the statistical properties the
assertions rely on.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

# Make `tests.harness` importable no matter which test subdirectory is
# collected (subdirectories are not packages, so pytest only puts their
# own basedir on sys.path).
_REPO_ROOT = str(Path(__file__).resolve().parent.parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from repro.traces.synthetic import (
    TraceConfig,
    SyntheticTraceGenerator,
    generate_fsl_like,
    generate_ms_like,
)


@pytest.fixture(scope="session")
def fsl_small():
    """Three FSL-like snapshots (~2-4k chunks each)."""
    return generate_fsl_like(users=3, snapshots_per_user=1, scale=0.15, seed=42)


@pytest.fixture(scope="session")
def ms_small():
    """Three MS-like snapshots (~2-4k chunks each)."""
    return generate_ms_like(machines=3, scale=0.15, seed=42)


@pytest.fixture(scope="session")
def snapshot_small(fsl_small):
    """One FSL-like snapshot with meaningful duplication."""
    return fsl_small.snapshots[0]


@pytest.fixture(scope="session")
def snapshot_series():
    """A 5-snapshot evolution series from one user (cross-snapshot overlap)."""
    config = TraceConfig(
        name="series",
        files_per_snapshot=30,
        file_copy_prob=0.4,
        popular_pool_size=300,
        popular_prob=0.2,
        zipf_s=1.5,
    )
    generator = SyntheticTraceGenerator(config, "u0", seed=7)
    return [generator.snapshot(f"snap{i:02d}") for i in range(5)]


@pytest.fixture
def rng():
    """Deterministic RNG per test."""
    return random.Random(1234)


@pytest.fixture(autouse=True)
def _reset_crash_injector():
    """No armed crash point ever leaks across tests (DESIGN.md §12)."""
    from repro.storage import crash

    crash.get_injector().reset()
    yield
    crash.get_injector().reset()
