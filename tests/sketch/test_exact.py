"""Exact counter baseline."""

from hypothesis import given, strategies as st

from repro.sketch.exact import ExactCounter


class TestExactCounter:
    def test_counts(self):
        counter = ExactCounter()
        assert counter.update_item(b"a") == 1
        assert counter.update_item(b"a") == 2
        assert counter.update_item(b"b") == 1
        assert counter.estimate_item(b"a") == 2
        assert counter.estimate_item(b"missing") == 0

    def test_unique_and_total(self):
        counter = ExactCounter()
        for i in range(30):
            counter.update_item(bytes([i % 4]))
        assert counter.unique_items() == 4
        assert counter.total == 30

    def test_counts_snapshot_is_a_copy(self):
        counter = ExactCounter()
        counter.update_item(b"a")
        snapshot = counter.counts()
        snapshot[b"a"] = 99
        assert counter.estimate_item(b"a") == 1

    def test_error_bound_zero(self):
        assert ExactCounter().error_bound() == 0.0

    def test_reset(self):
        counter = ExactCounter()
        counter.update_item(b"a")
        counter.reset()
        assert counter.total == 0
        assert counter.estimate_item(b"a") == 0

    @given(st.lists(st.binary(min_size=1, max_size=4), max_size=100))
    def test_matches_python_counter(self, stream):
        import collections

        counter = ExactCounter()
        truth = collections.Counter()
        for item in stream:
            counter.update_item(item)
            truth[item] += 1
        assert counter.counts() == dict(truth)
