"""Batched sketch updates must replay the sequential semantics exactly.

``CountMinSketch.update_batch`` (DESIGN.md §16) promises result-identity
with per-item ``update`` calls — including within-batch collisions,
where a later item's estimate must see the increments of earlier items
that hashed to the same cells. The key-manager batch paths additionally
promise that FTED retune boundaries fire at the same request indices as
the sequential path, so ``t`` and every seed decision match bit-for-bit.
"""

import random

from repro.core.ted import TedKeyManager
from repro.sketch.countmin import CountMinSketch
from repro.utils import kernels


def _with_kernels(enabled, fn):
    previous = kernels.set_kernels_enabled(enabled)
    try:
        return fn()
    finally:
        kernels.set_kernels_enabled(previous)


def _collision_heavy_batch(rng, n, rows=4, width=64, distinct=12):
    # A small pool over a small width forces many exact repeats and
    # many partial (per-cell) collisions inside one batch.
    pool = [
        [rng.randrange(width) for _ in range(rows)] for _ in range(distinct)
    ]
    return [list(rng.choice(pool)) for _ in range(n)]


def test_update_batch_matches_sequential_plain():
    rng = random.Random(11)
    batch = _collision_heavy_batch(rng, 400)
    batched = CountMinSketch(rows=4, width=64)
    sequential = CountMinSketch(rows=4, width=64)
    est_batched = _with_kernels(True, lambda: batched.update_batch(batch))
    est_sequential = _with_kernels(
        False, lambda: [sequential.update(item) for item in batch]
    )
    assert est_batched == est_sequential
    assert (batched._counters == sequential._counters).all()
    assert batched.total == sequential.total


def test_update_batch_conservative_falls_back_exactly():
    rng = random.Random(13)
    batch = _collision_heavy_batch(rng, 200)
    batched = CountMinSketch(rows=4, width=64, conservative=True)
    sequential = CountMinSketch(rows=4, width=64, conservative=True)
    est_batched = _with_kernels(True, lambda: batched.update_batch(batch))
    est_sequential = [sequential.update(item) for item in batch]
    assert est_batched == est_sequential
    assert (batched._counters == sequential._counters).all()


def test_update_batch_empty_and_shape_checks():
    sketch = CountMinSketch(rows=4, width=64)
    assert _with_kernels(True, lambda: sketch.update_batch([])) == []
    try:
        _with_kernels(True, lambda: sketch.update_batch([[1, 2, 3]]))
    except ValueError:
        pass
    else:
        raise AssertionError("wrong-arity item was accepted")


def _run_generate(enabled, batches, **kwargs):
    def body():
        km = TedKeyManager(secret=b"kappa", rng=random.Random(99), **kwargs)
        seeds = [km.generate_seeds(batch) for batch in batches]
        return km, seeds

    return _with_kernels(enabled, body)


def test_generate_seeds_parity_bted_and_fted():
    rng = random.Random(31)
    # Batch sizes straddle the FTED retune boundary (37): mid-call
    # retunes, exact-boundary calls, and empty calls all must agree.
    batches = [
        _collision_heavy_batch(rng, n, width=512, distinct=40)
        for n in (1, 36, 38, 0, 100, 37)
    ]
    for kwargs in (
        dict(t=4),
        dict(blowup_factor=1.5, batch_size=37),
    ):
        km_fast, seeds_fast = _run_generate(True, batches, **kwargs)
        km_ref, seeds_ref = _run_generate(False, batches, **kwargs)
        assert seeds_fast == seeds_ref
        assert km_fast.t == km_ref.t
        assert km_fast.stats.requests == km_ref.stats.requests
        assert km_fast.stats.t_history == km_ref.stats.t_history
        assert (
            km_fast.sketch._counters == km_ref.sketch._counters
        ).all()
        assert km_fast._freq_by_identity == km_ref._freq_by_identity
        assert km_fast._requests_in_batch == km_ref._requests_in_batch


def test_observe_batch_parity_replays_retunes():
    rng = random.Random(37)
    batches = [
        _collision_heavy_batch(rng, n, width=512, distinct=40)
        for n in (80, 37, 5)
    ]

    def run(enabled):
        def body():
            km = TedKeyManager(
                secret=b"kappa",
                blowup_factor=1.5,
                batch_size=37,
                rng=random.Random(1),
            )
            for batch in batches:
                km.observe_batch(batch)
            return km

        return _with_kernels(enabled, body)

    km_fast, km_ref = run(True), run(False)
    assert km_fast.t == km_ref.t
    assert (km_fast.sketch._counters == km_ref.sketch._counters).all()
    assert km_fast._requests_in_batch == km_ref._requests_in_batch
    assert km_fast.stats.t_history == km_ref.stats.t_history


def test_estimate_batch_parity():
    rng = random.Random(41)
    batches = [
        _collision_heavy_batch(rng, n, width=512, distinct=40)
        for n in (0, 50, 13)
    ]

    def run(enabled):
        def body():
            km = TedKeyManager(
                secret=b"kappa", blowup_factor=1.5, rng=random.Random(1)
            )
            return km, [km.estimate_batch(batch) for batch in batches]

        return _with_kernels(enabled, body)

    (km_fast, est_fast), (km_ref, est_ref) = run(True), run(False)
    assert est_fast == est_ref
    assert (km_fast.sketch._counters == km_ref.sketch._counters).all()
    assert km_fast._freq_by_identity == km_ref._freq_by_identity
