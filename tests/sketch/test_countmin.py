"""Count-Min Sketch invariants: never under-counts, bounded over-counts."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketch.countmin import CountMinSketch


class TestBasics:
    def test_single_item(self):
        sketch = CountMinSketch(rows=4, width=64)
        assert sketch.update_item(b"a") == 1
        assert sketch.estimate_item(b"a") == 1

    def test_repeated_item_counts_up(self):
        sketch = CountMinSketch(rows=4, width=64)
        for i in range(10):
            assert sketch.update_item(b"a") == i + 1

    def test_unseen_item_with_empty_sketch(self):
        sketch = CountMinSketch(rows=4, width=64)
        assert sketch.estimate_item(b"nope") == 0

    def test_total_tracks_stream_length(self):
        sketch = CountMinSketch(rows=2, width=32)
        for i in range(17):
            sketch.update_item(bytes([i]))
        assert sketch.total == 17

    def test_reset(self):
        sketch = CountMinSketch(rows=2, width=32)
        sketch.update_item(b"a")
        sketch.reset()
        assert sketch.total == 0
        assert sketch.estimate_item(b"a") == 0

    @pytest.mark.parametrize("rows,width", [(0, 8), (4, 0), (-1, 8)])
    def test_invalid_geometry(self, rows, width):
        with pytest.raises(ValueError):
            CountMinSketch(rows=rows, width=width)

    def test_wrong_hash_count_rejected(self):
        sketch = CountMinSketch(rows=4, width=64)
        with pytest.raises(ValueError):
            sketch.update([1, 2, 3])

    def test_memory_accounting(self):
        sketch = CountMinSketch(rows=4, width=1024)
        assert sketch.memory_bytes() == 4 * 1024 * 4

    def test_error_bound_formula(self):
        import math

        sketch = CountMinSketch(rows=4, width=100)
        for i in range(50):
            sketch.update_item(bytes([i]))
        assert sketch.error_bound() == pytest.approx(50 * math.e / 100)


class TestNeverUndercounts:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=300),
        st.integers(1, 4),
        st.sampled_from([8, 64, 1024]),
    )
    def test_estimate_at_least_true_count(self, stream, rows, width):
        # The defining one-sided error guarantee of the CM sketch.
        sketch = CountMinSketch(rows=rows, width=width)
        truth = collections.Counter()
        for value in stream:
            item = value.to_bytes(2, "big")
            sketch.update_item(item)
            truth[item] += 1
        for item, count in truth.items():
            assert sketch.estimate_item(item) >= count

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    def test_conservative_update_never_undercounts(self, stream):
        sketch = CountMinSketch(rows=4, width=16, conservative=True)
        truth = collections.Counter()
        for value in stream:
            item = value.to_bytes(2, "big")
            sketch.update_item(item)
            truth[item] += 1
        for item, count in truth.items():
            assert sketch.estimate_item(item) >= count


class TestAccuracy:
    def test_exact_when_width_ample(self):
        # With far more counters than items, collisions are unlikely and
        # estimates should be exact.
        sketch = CountMinSketch(rows=4, width=2**16)
        truth = collections.Counter()
        for i in range(200):
            item = (i % 40).to_bytes(2, "big")
            sketch.update_item(item)
            truth[item] += 1
        exact = sum(
            sketch.estimate_item(item) == count
            for item, count in truth.items()
        )
        assert exact == len(truth)

    def test_conservative_no_worse_than_plain(self):
        plain = CountMinSketch(rows=4, width=32)
        conservative = CountMinSketch(rows=4, width=32, conservative=True)
        stream = [(i * 7919) % 100 for i in range(500)]
        for value in stream:
            item = value.to_bytes(2, "big")
            plain.update_item(item)
            conservative.update_item(item)
        for value in set(stream):
            item = value.to_bytes(2, "big")
            assert conservative.estimate_item(item) <= plain.estimate_item(item)

    def test_narrow_width_overestimates(self):
        # The over-estimation regime Experiment A.2 relies on: shrinking w
        # inflates frequencies.
        wide = CountMinSketch(rows=4, width=2**14)
        narrow = CountMinSketch(rows=4, width=8)
        for i in range(2000):
            item = i.to_bytes(4, "big")
            wide.update_item(item)
            narrow.update_item(item)
        wide_sum = sum(
            wide.estimate_item(i.to_bytes(4, "big")) for i in range(100)
        )
        narrow_sum = sum(
            narrow.estimate_item(i.to_bytes(4, "big")) for i in range(100)
        )
        assert narrow_sum > wide_sum


class TestMerge:
    def test_merge_equals_combined_stream(self):
        a = CountMinSketch(rows=3, width=64)
        b = CountMinSketch(rows=3, width=64)
        for i in range(50):
            a.update_item(bytes([i % 10]))
            b.update_item(bytes([i % 7]))
        combined = CountMinSketch(rows=3, width=64)
        for i in range(50):
            combined.update_item(bytes([i % 10]))
        for i in range(50):
            combined.update_item(bytes([i % 7]))
        a.merge(b)
        for i in range(10):
            assert a.estimate_item(bytes([i])) == combined.estimate_item(
                bytes([i])
            )
        assert a.total == combined.total

    def test_merge_rejects_mismatched_geometry(self):
        with pytest.raises(ValueError):
            CountMinSketch(rows=3, width=64).merge(
                CountMinSketch(rows=4, width=64)
            )

    def test_merge_rejects_conservative(self):
        with pytest.raises(ValueError):
            CountMinSketch(rows=3, width=64, conservative=True).merge(
                CountMinSketch(rows=3, width=64, conservative=True)
            )
