#!/usr/bin/env python3
"""Markdown link-and-anchor checker for the repo's documentation.

Validates every inline markdown link (``[text](target)``) in the given
documents:

* relative file targets must exist on disk (resolved against the
  document's own directory);
* ``#anchor`` fragments — in-document or on a linked ``.md`` file —
  must match a heading's GitHub-style slug in the target document;
* ``http(s)://`` and ``mailto:`` targets are skipped (no network I/O
  in CI).

Fenced code blocks and inline code spans are stripped first, so command
examples never produce false positives. Citation brackets like
``[46] (Lillibridge...)`` don't match — only ``](`` adjacency counts.

Usage::

    python tools/check_docs.py README.md DESIGN.md ...
    python tools/check_docs.py            # the default doc set

Exits 1 listing every broken link, 0 when all resolve.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List

ROOT = Path(__file__).resolve().parent.parent

DEFAULT_DOCS = (
    "README.md",
    "DESIGN.md",
    "ARCHITECTURE.md",
    "EXPERIMENTS.md",
    "docs/RUNBOOK.md",
    "docs/METRICS.md",
    "docs/PERFORMANCE.md",
)

_LINK = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.M | re.S)
_INLINE_CODE = re.compile(r"`[^`\n]*`")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.M)


def _strip_code(text: str) -> str:
    return _INLINE_CODE.sub("", _FENCE.sub("", text))


def _slugify(heading: str) -> str:
    """GitHub-style heading slug (lowercase, punctuation dropped)."""
    heading = _INLINE_CODE.sub(
        lambda match: match.group(0).strip("`"), heading
    )
    # Drop markdown emphasis and link syntax from the heading text.
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.lower().strip()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: Path) -> Dict[str, None]:
    """Every valid anchor slug in one markdown document."""
    text = _FENCE.sub("", path.read_text())
    slugs: Dict[str, None] = {}
    for match in _HEADING.finditer(text):
        slug = _slugify(match.group(2))
        if slug in slugs:  # duplicates get -1, -2, ... suffixes
            suffix = 1
            while f"{slug}-{suffix}" in slugs:
                suffix += 1
            slug = f"{slug}-{suffix}"
        slugs[slug] = None
    return slugs


def check_document(path: Path) -> List[str]:
    """All broken links in one document, as human-readable strings."""
    problems: List[str] = []
    text = _strip_code(path.read_text())
    for match in _LINK.finditer(text):
        target = match.group(2)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path}: broken file link '{target}' "
                    f"({resolved} does not exist)"
                )
                continue
        else:
            resolved = path
        if anchor:
            if resolved.suffix != ".md" or not resolved.is_file():
                continue  # anchors into non-markdown are unverifiable
            if anchor not in _anchors(resolved):
                problems.append(
                    f"{path}: broken anchor '{target}' "
                    f"(no heading slugs to '#{anchor}' "
                    f"in {resolved.name})"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "documents",
        nargs="*",
        help=f"markdown files to check (default: {', '.join(DEFAULT_DOCS)})",
    )
    args = parser.parse_args(argv)
    documents = [
        Path(doc) for doc in (args.documents or ())
    ] or [ROOT / doc for doc in DEFAULT_DOCS]

    problems: List[str] = []
    checked = 0
    for path in documents:
        if not path.exists():
            problems.append(f"{path}: document does not exist")
            continue
        checked += 1
        problems.extend(check_document(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(
            f"\n{len(problems)} broken link(s) across "
            f"{checked} document(s).",
            file=sys.stderr,
        )
        return 1
    print(f"all links resolve across {checked} document(s).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
