#!/usr/bin/env python
"""Chaos matrix for the multi-process shard fleet (DESIGN.md §17).

Spawns N ``repro serve-shard`` processes (provider storage leaves, or
KM sketch observers), drives a seeded sequential workload through the
fleet client, and injects one whole-process fault per round on each
shard in turn:

* **kill** — SIGKILL the shard, later restart it (crash + §12 recovery).
* **pause** — SIGSTOP/SIGCONT (alive but silent: the io-timeout path).
* **partition** — cut the shard's TCP proxy (refused instantly: the
  network failed, the process did not).

Clients reach every shard through a local TCP proxy so a partition is a
real connection-level event, not an in-process flag. After each fault
the harness asserts the degraded-mode contract — failures are *typed*
(``ShardUnavailableError`` or a transport error, never a hang longer
than the stall budget), operations on healthy shards keep succeeding —
then heals the fault and waits for the breaker to report the rejoin.

End-of-run verification (provider target):

1. **Zero acked-data loss** — every acknowledged upload downloads
   byte-identical through the healed fleet.
2. **Serial parity** — replaying the exact attempt log (including the
   failed attempts, which consumed key-generation draws) against a
   fresh in-process deployment yields a bit-identical KM sketch, equal
   recipes for every acked file, and an equal unique-chunk count: the
   chaos run converged to the state a failure-free run produces.
3. **Clean fsck** — each shard leaf passes ``fsck`` after a SIGTERM
   shutdown (the serve-shard close path seals containers).
4. **Failure-domain metrics** — ``ted_shard_failover_total`` recorded
   at least one ``open`` and one ``rejoin`` transition, and
   ``ted_breaker_state``/``ted_shard_health`` exist for every shard.

The KM target runs the same fault matrix against observer processes;
sketch parity is skipped there (a keygen aborted mid-fan-out legally
re-observes sub-batches on retry), and convergence is asserted as
"after restart + heal, every file re-uploads and downloads cleanly and
the restarted observer restored durable state".

Used by the ``chaos-smoke`` CI job; also importable from tests
(``run_chaos`` returns the report dict instead of exiting).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import get_profile
from repro.obs import metrics as obs_metrics
from repro.storage.recipe import FileRecipe, unseal
from repro.storage.scrub import fsck_path
from repro.tedstore.client import TedStoreClient
from repro.tedstore.health import ShardUnavailableError
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import GetRecipes, ProtocolError
from repro.tedstore.network import probe_endpoint
from repro.tedstore.provider import ProviderService
from repro.tedstore.retry import DeadlineExceeded, RetryPolicy
from repro.tedstore.ring import HashRing, store_ring

FAULT_KINDS = ("kill", "pause", "partition")

#: Failures the degraded-mode contract permits a client to see. Anything
#: outside this set (or any stall past the budget) fails the run.
TYPED_FAILURES = (
    ShardUnavailableError,
    DeadlineExceeded,
    ConnectionError,
    TimeoutError,
    OSError,
    ProtocolError,
)

RING_SEED = 0
SKETCH_WIDTH = 2**16
KM_SECRET = b"chaos-secret"
MASTER_KEY = hashlib.sha256(b"chaos-master").digest()


class HarnessError(AssertionError):
    """A chaos invariant did not hold."""


def _free_port() -> int:
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TcpProxy:
    """Byte-pump proxy with a partition switch.

    The fleet client dials the proxy; the proxy dials the shard. A
    partition closes every active pipe and refuses new connects until
    healed, so the client observes connection resets/refusals at the
    socket layer while the shard process itself stays healthy — the
    network failed, not the process.
    """

    def __init__(self, upstream_port: int) -> None:
        self.upstream = ("127.0.0.1", upstream_port)
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._partitioned = False
        self._closed = False
        self._lock = threading.Lock()
        self._pipes: set = set()
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"proxy:{self.port}", daemon=True
        )
        self._thread.start()

    def partition(self) -> None:
        with self._lock:
            self._partitioned = True
            pipes = list(self._pipes)
        for sock in pipes:
            try:
                sock.close()
            except OSError:
                pass

    def heal(self) -> None:
        with self._lock:
            self._partitioned = False

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                refused = self._partitioned or self._closed
            if refused:
                client.close()
                continue
            try:
                upstream = socket.create_connection(self.upstream, timeout=5)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._pipes.update((client, upstream))
            for a, b in ((client, upstream), (upstream, client)):
                threading.Thread(
                    target=self._pump, args=(a, b), daemon=True
                ).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.close()
                except OSError:
                    pass
            with self._lock:
                self._pipes.discard(src)
                self._pipes.discard(dst)

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self.partition()
        try:
            self._listener.close()
        except OSError:
            pass


class ShardProc:
    """One serve-shard child process and its failure-domain controls."""

    def __init__(
        self,
        role: str,
        shard_id: int,
        root: Path,
        port: int,
        log_dir: Path,
    ) -> None:
        self.role = role
        self.shard_id = shard_id
        self.root = root
        self.port = port
        self.log_path = log_dir / f"{role}-shard-{shard_id}.log"
        self.proc: Optional[subprocess.Popen] = None
        self.paused = False

    def command(self) -> List[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve-shard",
            "--role",
            self.role,
            "--shard",
            str(self.shard_id),
            "--root",
            str(self.root),
            "--port",
            str(self.port),
        ]
        if self.role == "km":
            cmd += [
                "--secret",
                KM_SECRET.decode(),
                "--sketch-width",
                str(SKETCH_WIDTH),
            ]
        return cmd

    def start(self, ready_timeout: float = 20.0) -> None:
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        log = open(self.log_path, "ab")
        self.proc = subprocess.Popen(
            self.command(), stdout=log, stderr=subprocess.STDOUT, env=env
        )
        log.close()
        self.paused = False
        deadline = time.monotonic() + ready_timeout
        while True:
            try:
                probe_endpoint(("127.0.0.1", self.port), timeout=1.0)
                return
            except Exception:
                if self.proc.poll() is not None:
                    raise HarnessError(
                        f"{self.role} shard {self.shard_id} exited "
                        f"rc={self.proc.returncode} before serving "
                        f"(see {self.log_path})"
                    )
                if time.monotonic() > deadline:
                    raise HarnessError(
                        f"{self.role} shard {self.shard_id} not ready "
                        f"within {ready_timeout}s"
                    )
                time.sleep(0.05)

    def kill(self) -> None:
        assert self.proc is not None
        self.proc.kill()
        self.proc.wait(timeout=10)

    def pause(self) -> None:
        assert self.proc is not None
        os.kill(self.proc.pid, signal.SIGSTOP)
        self.paused = True

    def resume(self) -> None:
        assert self.proc is not None
        os.kill(self.proc.pid, signal.SIGCONT)
        self.paused = False

    def terminate(self, timeout: float = 15.0) -> int:
        """SIGTERM and wait: the drain-and-seal shutdown path."""
        assert self.proc is not None
        if self.paused:
            self.resume()
        self.proc.terminate()
        return self.proc.wait(timeout=timeout)

    def stop_hard(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            if self.paused:
                self.resume()
            self.proc.kill()
            self.proc.wait(timeout=10)

    def banner(self) -> str:
        try:
            return self.log_path.read_text()
        except OSError:
            return ""


def _make_front() -> TedKeyManager:
    # Seeded RNG (the paper's Eq. 3 draw is injectable by design): the
    # chaos front and the serial-replay front consume identical random
    # streams, which upgrades "convergent state" to bit-identical
    # seeds, ciphertexts, and recipes.
    return TedKeyManager(
        secret=KM_SECRET,
        blowup_factor=1.05,
        batch_size=48_000,
        sketch_width=SKETCH_WIDTH,
        rng=random.Random(0xC8A05),
    )


def _make_client(km_transport, provider_transport) -> TedStoreClient:
    # Sequential (workers=1) on purpose: the attempt log then maps
    # one-to-one onto the key manager's RNG stream, which is what makes
    # the serial-replay parity check exact (DESIGN.md §17).
    return TedStoreClient(
        km_transport,
        provider_transport,
        master_key=MASTER_KEY,
        profile=get_profile("shactr"),
        sketch_width=SKETCH_WIDTH,
        batch_size=4096,
    )


class Workload:
    """Seeded file stream with dedup overlap; records every attempt."""

    def __init__(self, seed: int, size_kb: int) -> None:
        self._rng = random.Random(seed)
        self.size = size_kb << 10
        self.data: Dict[str, bytes] = {}
        self.attempts: List[dict] = []
        self._counter = 0

    def next_file(self) -> Tuple[str, bytes]:
        name = f"f{self._counter:04d}"
        self._counter += 1
        if self.data and self._rng.random() < 0.3:
            data = self._rng.choice(sorted(self.data))
            payload = self.data[data]
        else:
            payload = self._rng.randbytes(self.size)
        self.data[name] = payload
        return name, payload

    def record(self, name: str, acked: bool, seconds: float, error: str) -> None:
        self.attempts.append(
            {
                "name": name,
                "acked": acked,
                "seconds": round(seconds, 4),
                "error": error,
            }
        )


def _attempt_upload(
    client: TedStoreClient,
    workload: Workload,
    name: str,
    data: bytes,
    stall_budget: float,
) -> bool:
    start = time.monotonic()
    error = ""
    try:
        client.upload(name, data)
        acked = True
    except TYPED_FAILURES as exc:
        acked = False
        error = f"{type(exc).__name__}: {exc}"
    elapsed = time.monotonic() - start
    if elapsed > stall_budget:
        raise HarnessError(
            f"upload {name} stalled {elapsed:.2f}s "
            f"(budget {stall_budget:.2f}s)"
        )
    workload.record(name, acked, elapsed, error)
    return acked


def _wait_all_closed(shard_health, timeout: float = 20.0) -> None:
    """Poll a ``shard -> breaker state`` view until every shard rejoins."""
    deadline = time.monotonic() + timeout
    while True:
        states = shard_health()
        if all(state == "closed" for state in states.values()):
            return
        if time.monotonic() > deadline:
            raise HarnessError(f"shards never rejoined: {states}")
        time.sleep(0.1)


def _failover_counts() -> Dict[str, int]:
    counter = obs_metrics.get_registry().get("ted_shard_failover_total")
    counts = {"open": 0, "rejoin": 0}
    if counter is not None:
        for labels, child in counter.children():
            event = labels[-1]
            if event in counts:
                counts[event] += int(child.value)
    return counts


def run_chaos(
    target: str = "provider",
    shards: int = 3,
    seed: int = 2013,
    faults: Tuple[str, ...] = FAULT_KINDS,
    uploads_per_phase: int = 3,
    size_kb: int = 48,
    stall_budget: float = 10.0,
    workdir: Optional[Path] = None,
) -> dict:
    """Run the fault matrix; returns the report dict, raises on failure."""
    if target not in ("provider", "km"):
        raise ValueError(f"unknown target {target!r}")
    for fault in faults:
        if fault not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {fault!r}")

    own_workdir = workdir is None
    workdir = Path(
        workdir or tempfile.mkdtemp(prefix=f"ted-chaos-{target}-")
    )
    root = workdir / ("fleet" if target == "provider" else "km_root")
    root.mkdir(parents=True, exist_ok=True)
    log_dir = workdir / "logs"
    log_dir.mkdir(exist_ok=True)

    started = time.monotonic()
    shard_ids = list(range(shards))
    real_ports = {k: _free_port() for k in shard_ids}
    proxies = {k: TcpProxy(real_ports[k]) for k in shard_ids}
    ring = HashRing.build(shards, seed=RING_SEED).with_endpoints(
        {k: f"127.0.0.1:{proxies[k].port}" for k in shard_ids}
    )
    store_ring(root / "ring.json", ring)

    role = "provider" if target == "provider" else "km"
    procs = {
        k: ShardProc(role, k, root, real_ports[k], log_dir)
        for k in shard_ids
    }
    front = _make_front()
    fleet_provider = None
    km_service = None
    report: dict = {
        "target": target,
        "shards": shards,
        "seed": seed,
        "faults": list(faults),
        "rounds": [],
    }
    workload = Workload(seed, size_kb)

    try:
        for proc in procs.values():
            proc.start()

        fleet_tuning = dict(
            retry_policy=RetryPolicy(
                max_attempts=2,
                base_delay=0.05,
                max_delay=0.2,
                deadline=stall_budget * 0.8,
            ),
            breaker_failures=2,
            breaker_reset=0.5,
            heartbeat_interval=0.25,
            probe_timeout=1.0,
            connect_timeout=1.5,
            io_timeout=2.0,
        )
        if target == "provider":
            from repro.tedstore.fleet import MultiShardProvider

            fleet_provider = MultiShardProvider(ring, **fleet_tuning)
            km_service = KeyManagerService(front)
            client = _make_client(
                LocalKeyManager(km_service), fleet_provider
            )
            shard_health = fleet_provider.shard_health
        else:
            from repro.tedstore.sharding import ShardedKeyManager

            km_service = ShardedKeyManager(
                front, state_root=root, fleet_options=fleet_tuning
            )
            fleet_provider = LocalProvider(ProviderService(in_memory=True))
            client = _make_client(
                LocalKeyManager(km_service), fleet_provider
            )
            shard_health = km_service.shard_health

        _wait_all_closed(shard_health)

        # -- the fault matrix: every (fault, victim) pair ----------------
        for fault in faults:
            for victim in shard_ids:
                round_info = {"fault": fault, "victim": victim}
                for _ in range(uploads_per_phase):
                    name, data = workload.next_file()
                    if not _attempt_upload(
                        client, workload, name, data, stall_budget
                    ):
                        raise HarnessError(
                            f"healthy-phase upload {name} failed"
                        )

                if fault == "kill":
                    procs[victim].kill()
                elif fault == "pause":
                    procs[victim].pause()
                else:
                    proxies[victim].partition()

                acked = failed = 0
                for _ in range(uploads_per_phase):
                    name, data = workload.next_file()
                    if _attempt_upload(
                        client, workload, name, data, stall_budget
                    ):
                        acked += 1
                    else:
                        failed += 1
                round_info["degraded_acked"] = acked
                round_info["degraded_failed"] = failed

                if fault == "kill":
                    procs[victim].start()
                elif fault == "pause":
                    procs[victim].resume()
                else:
                    proxies[victim].heal()
                _wait_all_closed(shard_health)
                report["rounds"].append(round_info)

        # -- convergence: every attempted file must land on the healed
        # fleet (failed attempts replay byte-identically: provider puts
        # dedup, observer logs replay by batch id).
        for name in sorted(workload.data):
            if not _attempt_upload(
                client, workload, name, workload.data[name], stall_budget
            ):
                raise HarnessError(f"post-heal re-upload of {name} failed")

        # -- verification 1: zero acked-data loss ------------------------
        verified = 0
        for name, payload in sorted(workload.data.items()):
            restored = client.download(name)
            if restored != payload:
                raise HarnessError(f"acked file {name} corrupted")
            verified += 1
        report["verified_downloads"] = verified

        # -- verification 4: failure-domain metrics ----------------------
        failovers = _failover_counts()
        if failovers["open"] < 1 or failovers["rejoin"] < 1:
            raise HarnessError(
                f"expected breaker open+rejoin transitions, got {failovers}"
            )
        report["failovers"] = failovers
        registry = obs_metrics.get_registry()
        for metric in ("ted_breaker_state", "ted_shard_health"):
            if registry.get(metric) is None:
                raise HarnessError(f"metric {metric} never registered")

        # -- verification 2: serial-replay parity (provider target) ------
        if target == "provider":
            serial_front = _make_front()
            serial_service = ProviderService(
                directory=workdir / "serial",
                shards=shards,
                ring_seed=RING_SEED,
                container_bytes=4 << 20,
            )
            serial_client = _make_client(
                LocalKeyManager(KeyManagerService(serial_front)),
                LocalProvider(serial_service),
            )
            for attempt in workload.attempts:
                serial_client.upload(
                    attempt["name"], workload.data[attempt["name"]]
                )
            if not np.array_equal(
                front.sketch._counters, serial_front.sketch._counters
            ):
                raise HarnessError("KM sketch diverged from serial run")
            if front.sketch.total != serial_front.sketch.total:
                raise HarnessError("KM sketch totals diverged")
            serial_provider = LocalProvider(serial_service)
            referenced: set = set()
            for name in sorted(workload.data):
                fleet_recipes = fleet_provider.get_recipes(
                    GetRecipes(file_name=name)
                )
                serial_recipes = serial_provider.get_recipes(
                    GetRecipes(file_name=name)
                )
                # Sealing is randomized (fresh nonce per seal), so
                # compare the recipe *plaintexts*, which are fully
                # determined by the chunk stream and the key stream.
                for field in ("sealed_file_recipe", "sealed_key_recipe"):
                    if unseal(
                        MASTER_KEY, getattr(fleet_recipes, field)
                    ) != unseal(MASTER_KEY, getattr(serial_recipes, field)):
                        raise HarnessError(f"recipes for {name} diverged")
                plain = unseal(MASTER_KEY, fleet_recipes.sealed_file_recipe)
                referenced.update(
                    fp for fp, _ in FileRecipe.deserialize(plain).entries
                )
            report["parity"] = {
                "sketch": True,
                "recipes": len(workload.data),
                "referenced_chunks": len(referenced),
            }
            serial_service.close()

        # -- shutdown + verification 3: SIGTERM then clean fsck ----------
        if fleet_provider is not None and hasattr(fleet_provider, "close"):
            fleet_provider.close()
        if target == "km":
            km_service.close()
        rcs = {k: procs[k].terminate() for k in shard_ids}
        if any(rc != 0 for rc in rcs.values()):
            raise HarnessError(f"unclean shard shutdown: {rcs}")
        if target == "provider":
            fleet_entries = 0
            for k in shard_ids:
                leaf = root / "shards" / str(k)
                stray = list(leaf.rglob("*.tmp"))
                if stray:
                    raise HarnessError(f"stray tmp files in shard {k}: {stray}")
                fsck = fsck_path(leaf)
                if not fsck.clean:
                    raise HarnessError(f"shard {k} fsck damaged")
                fleet_entries += fsck.index_entries_checked
            report["fsck_clean"] = shards
            # Chunk-union convergence against the serial store, on the
            # *durable index* (a restarted shard's runtime counters
            # reset; its index does not). The sandwich invariant:
            #   recipe-referenced chunks <= fleet <= serial.
            # The lower bound says every chunk the converged recipes
            # reference is durable (the downloads proved the bytes);
            # the upper bound says the chaos run stored nothing a
            # failure-free run would not have — failed attempts leave
            # no phantom chunks, only at most the stale-estimate
            # ciphertext versions the serial run also (re)stores.
            serial_entries = 0
            for leaf in sorted((workdir / "serial" / "shards").iterdir()):
                serial_fsck = fsck_path(leaf)
                if not serial_fsck.clean:
                    raise HarnessError("serial replay store fsck damaged")
                serial_entries += serial_fsck.index_entries_checked
            referenced_count = report["parity"]["referenced_chunks"]
            if not referenced_count <= fleet_entries <= serial_entries:
                raise HarnessError(
                    f"chunk union diverged: referenced={referenced_count} "
                    f"fleet={fleet_entries} serial={serial_entries}"
                )
            report["parity"]["unique_chunks"] = int(fleet_entries)
            report["parity"]["serial_chunks"] = int(serial_entries)
        else:
            # Observer restores ran during the kill rounds; the restart
            # banner proves durable state came back (§12 recovery).
            if "kill" in faults:
                restored = sum(
                    1
                    for k in shard_ids
                    if "deltas replayed=" in procs[k].banner()
                )
                if restored < shards:
                    raise HarnessError(
                        "observer restart banners missing restore report"
                    )
            report["restores_seen"] = shards

        attempts = workload.attempts
        acked_count = sum(1 for a in attempts if a["acked"])
        bytes_acked = sum(
            len(workload.data[a["name"]]) for a in attempts if a["acked"]
        )
        duration = time.monotonic() - started
        report.update(
            {
                "attempts": len(attempts),
                "acked": acked_count,
                "typed_errors": len(attempts) - acked_count,
                "max_attempt_seconds": max(a["seconds"] for a in attempts),
                "duration_seconds": round(duration, 3),
                "mib_per_second": round(
                    bytes_acked / duration / (1 << 20), 4
                ),
                "ok": True,
            }
        )
        return report
    finally:
        for proc in procs.values():
            proc.stop_hard()
        for proxy in proxies.values():
            proxy.close()
        if fleet_provider is not None and hasattr(fleet_provider, "close"):
            try:
                fleet_provider.close()
            except Exception:
                pass  # second close after a successful run
        if km_service is not None:
            try:
                km_service.close()
            except Exception:
                pass
        if own_workdir:
            import shutil

            shutil.rmtree(workdir, ignore_errors=True)


def merge_bench(report: dict, out: Optional[Path] = None) -> Path:
    """Merge a chaos summary into ``BENCH_load.json`` (same convention
    as :func:`repro.loadgen.report.write_bench`: one section per
    profile name, accumulated across calls)."""
    from repro.loadgen.report import DEFAULT_BENCH_OUT

    path = Path(
        out
        or os.environ.get("REPRO_BENCH_LOAD_OUT", str(DEFAULT_BENCH_OUT))
    )
    document: dict = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except ValueError:
            document = {}
    name = f"chaos_{report['target']}"
    document.setdefault("profiles", {})[name] = {
        "profile": name,
        "seed": report["seed"],
        "shards": report["shards"],
        "faults": report["faults"],
        "duration_seconds": report["duration_seconds"],
        "ops_total": report["attempts"],
        "errors_total": report["typed_errors"],
        "degraded_error_ratio": round(
            report["typed_errors"] / max(report["attempts"], 1), 6
        ),
        "max_stall_seconds": report["max_attempt_seconds"],
        "mib_per_second": report["mib_per_second"],
        "breached": False,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="chaos matrix for the multi-process shard fleet"
    )
    parser.add_argument(
        "--target", choices=["provider", "km"], default="provider"
    )
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument(
        "--faults",
        default=",".join(FAULT_KINDS),
        help="comma-separated subset of kill,pause,partition",
    )
    parser.add_argument("--uploads-per-phase", type=int, default=3)
    parser.add_argument("--size-kb", type=int, default=48)
    parser.add_argument(
        "--stall-budget", type=float, default=10.0,
        help="hard ceiling on any single client operation, seconds",
    )
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--json", action="store_true")
    parser.add_argument(
        "--bench-out", default=None, metavar="FILE",
        help="merge the summary into this BENCH_load.json",
    )
    args = parser.parse_args(argv)

    faults = tuple(
        f.strip() for f in args.faults.split(",") if f.strip()
    )
    try:
        report = run_chaos(
            target=args.target,
            shards=args.shards,
            seed=args.seed,
            faults=faults,
            uploads_per_phase=args.uploads_per_phase,
            size_kb=args.size_kb,
            stall_budget=args.stall_budget,
            workdir=Path(args.workdir) if args.workdir else None,
        )
    except HarnessError as exc:
        print(f"CHAOS FAILED: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"chaos[{report['target']}] ok: {report['attempts']} attempts, "
            f"{report['acked']} acked, {report['typed_errors']} typed "
            f"errors, max stall {report['max_attempt_seconds']:.2f}s, "
            f"{len(report['rounds'])} fault rounds in "
            f"{report['duration_seconds']:.1f}s"
        )
    if args.bench_out:
        path = merge_bench(report, Path(args.bench_out))
        print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
