#!/usr/bin/env python3
"""Before/after kernel perf delta on the load-smoke profile.

Runs the ``examples/load_smoke.toml`` workload twice — once with the
batched kernels disabled (``REPRO_KERNELS=off``, the per-byte/per-block
reference implementations) and once with them enabled — and merges both
reports into ``BENCH_load.json`` as the ``load-smoke-kernels-off`` /
``load-smoke-kernels-on`` profile pair, plus a ``perf_delta`` summary
with the upload-throughput speedup.

Each run happens in a fresh subprocess (this script re-invokes itself
with ``--child``) because the obs registry is process-global and
cumulative: two runs in one process would pollute each other's
percentiles and byte counters, and ``REPRO_KERNELS`` is read at import.

Gates (exit 1 on failure, after writing the JSON so the artifact always
carries the numbers):

* ``--min-speedup`` — kernels-on upload MiB/s must be at least this
  multiple of kernels-off (default 1.0: on must not be slower than off).
* ``--max-regression`` — the measured speedup must not fall more than
  this fraction below the ``perf_delta.upload_speedup`` already
  committed in the output file (default 0.10); skipped when no baseline
  exists yet. The comparison is on the on/off *ratio*, not absolute
  MiB/s: the ratio is normalized by the same machine's same-moment
  kernels-off pass, so the gate survives CI runners of very different
  absolute speed.

Usage::

    PYTHONPATH=src python tools/perf_delta.py [--scale 0.15]
        [--min-speedup 1.5] [--max-regression 0.10] [--out BENCH_load.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_PROFILE = REPO / "examples" / "load_smoke.toml"
DEFAULT_OUT = REPO / "BENCH_load.json"

BEFORE_NAME = "load-smoke-kernels-off"
AFTER_NAME = "load-smoke-kernels-on"


def _run_child(profile: Path, scale: float, json_out: Path) -> None:
    """Child mode: one load run, report JSON to ``json_out``."""
    from repro.loadgen.report import LoadReport
    from repro.loadgen.runner import LoadRunner
    from repro.loadgen.workload import WorkloadProfile

    workload = WorkloadProfile.from_toml(profile).scaled(scale)
    runner = LoadRunner(workload)
    totals = runner.run()
    report = LoadReport.collect(workload, totals, runner.tracker)
    json_out.write_text(json.dumps(report.to_dict()))


def _spawn(
    profile: Path, scale: float, kernels: str, tmpdir: Path
) -> dict:
    """Run one isolated load pass with REPRO_KERNELS=``kernels``."""
    json_out = tmpdir / f"report-{kernels}.json"
    env = dict(os.environ)
    env["REPRO_KERNELS"] = kernels
    env["PYTHONPATH"] = str(REPO / "src")
    # Children must not write the bench file themselves; the parent
    # merges both reports at once.
    env.pop("REPRO_BENCH_LOAD_OUT", None)
    subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--child",
            "--profile", str(profile),
            "--scale", str(scale),
            "--json-out", str(json_out),
        ],
        env=env,
        check=True,
        cwd=str(REPO),
    )
    return json.loads(json_out.read_text())


def _upload_mibs(report: dict, label: str) -> float:
    upload = report.get("per_op", {}).get("upload")
    if not upload:
        raise SystemExit(f"{label}: load run produced no uploads")
    return float(upload["mib_per_second"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", type=Path, default=DEFAULT_PROFILE)
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.15")),
        help="workload scale factor (default: REPRO_BENCH_SCALE or 0.15)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--min-speedup", type=float, default=1.0,
        help="required kernels-on / kernels-off upload MiB/s ratio",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.10,
        help="tolerated fractional drop vs the committed kernels-on "
             "baseline in --out (skipped when absent)",
    )
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--json-out", type=Path, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.child:
        _run_child(args.profile, args.scale, args.json_out)
        return 0

    document: dict = {}
    if args.out.exists():
        try:
            document = json.loads(args.out.read_text())
        except ValueError:
            document = {}
    baseline_speedup = document.get("perf_delta", {}).get("upload_speedup")

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)
        print(f"== pass 1/2: kernels off (scale {args.scale}) ==")
        before = _spawn(args.profile, args.scale, "off", tmpdir)
        print(f"== pass 2/2: kernels on (scale {args.scale}) ==")
        after = _spawn(args.profile, args.scale, "on", tmpdir)

    before_mibs = _upload_mibs(before, "kernels-off")
    after_mibs = _upload_mibs(after, "kernels-on")
    speedup = after_mibs / before_mibs if before_mibs else float("inf")

    before["profile"] = BEFORE_NAME
    after["profile"] = AFTER_NAME
    profiles = document.setdefault("profiles", {})
    profiles[BEFORE_NAME] = before
    profiles[AFTER_NAME] = after
    document["perf_delta"] = {
        "scale": args.scale,
        "upload_mib_per_second_before": before_mibs,
        "upload_mib_per_second_after": after_mibs,
        "upload_speedup": round(speedup, 3),
    }
    args.out.write_text(json.dumps(document, indent=2, sort_keys=True))

    print(
        f"upload throughput: {before_mibs:.2f} -> {after_mibs:.2f} MiB/s "
        f"({speedup:.2f}x), wrote {args.out}"
    )

    failed = False
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.2f}x floor"
        )
        failed = True
    if baseline_speedup:
        floor = (1.0 - args.max_regression) * float(baseline_speedup)
        if speedup < floor:
            print(
                f"FAIL: speedup {speedup:.2f}x regressed "
                f">{args.max_regression:.0%} vs committed baseline "
                f"{float(baseline_speedup):.2f}x"
            )
            failed = True
        else:
            print(
                f"baseline check ok: {speedup:.2f}x vs committed "
                f"{float(baseline_speedup):.2f}x (floor {floor:.2f}x)"
            )
    else:
        print("no committed baseline entry; regression check skipped")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
