#!/usr/bin/env python3
"""Generate (or verify) the metrics reference from the live registry.

Imports every module under ``repro.*`` so each one registers its
instruments with the process-global observability registry
(``repro.obs.metrics``), then renders the instrument catalogue —
name, kind, label names, help text — as a markdown table. Only
instrument *definitions* are rendered, never label values or counts,
so the output is deterministic for a given source tree.

Usage::

    python tools/gen_metrics_doc.py            # rewrite docs/METRICS.md
    python tools/gen_metrics_doc.py --check    # exit 1 if out of date

CI runs ``--check`` so the committed reference can never drift from the
code (the freshness gate next to the markdown link checker).
"""

from __future__ import annotations

import argparse
import importlib
import pkgutil
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "docs" / "METRICS.md"

_HEADER = """\
# Metrics reference

All instruments registered with the process-global observability
registry (`repro.obs.metrics`), exported via `repro stats --format prom`
(Prometheus text) or `--format json`. Naming follows
`ted_<subsystem>_<name>[_total]` (DESIGN.md §9); histograms additionally
export `_count`, `_sum`, and `p50/p95/p99` quantiles in snapshots.

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python tools/gen_metrics_doc.py
     CI verifies freshness with: python tools/gen_metrics_doc.py --check -->

| Metric | Type | Labels | Help |
|---|---|---|---|
"""


def _register_all_instruments() -> None:
    """Import every repro module so instruments self-register."""
    sys.path.insert(0, str(ROOT / "src"))
    import repro

    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        importlib.import_module(info.name)


def render() -> str:
    """The full METRICS.md contents for the current source tree."""
    _register_all_instruments()
    from repro.obs.metrics import get_registry

    lines = [_HEADER]
    for instrument in get_registry().instruments():
        labels = ", ".join(
            f"`{name}`" for name in instrument.labelnames
        ) or "—"
        help_text = instrument.help.replace("|", "\\|")
        lines.append(
            f"| `{instrument.name}` | {instrument.kind} "
            f"| {labels} | {help_text} |\n"
        )
    return "".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed doc matches the live registry "
        "instead of rewriting it",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"output path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    content = render()
    if args.check:
        committed = (
            args.out.read_text() if args.out.exists() else None
        )
        if committed != content:
            print(
                f"{args.out} is out of date with the metrics registry.\n"
                f"Regenerate with: python tools/gen_metrics_doc.py",
                file=sys.stderr,
            )
            return 1
        print(f"{args.out} is up to date "
              f"({content.count('| `ted_')} instruments).")
        return 0
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(content)
    print(f"wrote {args.out} "
          f"({content.count('| `ted_')} instruments).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
