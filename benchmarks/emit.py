"""Benchmark observability emission: dump results + metrics to JSON.

Benchmarks that want machine-readable output call :func:`emit` after
printing their human tables. Each call merges one named section into
``BENCH_obs.json`` (repo root by default, ``REPRO_BENCH_OUT`` overrides),
pairing the benchmark's own result rows with a snapshot of the metrics
registry — so the emitted document carries the latency percentiles of the
``ted_*`` histograms populated during the run (DESIGN.md §9).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.obs import metrics as obs_metrics

_DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def emit(
    section: str,
    results,
    registry: Optional[obs_metrics.MetricsRegistry] = None,
) -> Path:
    """Merge one benchmark section into the observability dump.

    Args:
        section: section name, e.g. ``"a1_fsl"`` or ``"b1_microbench"``.
        results: JSON-serializable benchmark output (table rows, dict...).
        registry: metrics registry to snapshot (default process-global).

    Returns:
        The path written.
    """
    out = Path(os.environ.get("REPRO_BENCH_OUT", str(_DEFAULT_OUT)))
    registry = registry or obs_metrics.get_registry()
    document = {}
    if out.exists():
        try:
            document = json.loads(out.read_text())
        except ValueError:
            document = {}  # overwrite a corrupt dump rather than crash
    document[section] = {
        "results": results,
        "metrics": registry.snapshot(),
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True))
    return out
