"""Experiment A.2 (Figure 3): sketch-width sweep for FTED.

The paper fixes r = 4 and sweeps w = 2^21..2^25 over multi-TB traces; we
sweep a proportionally shifted range over the synthetic datasets so the
same over-estimation regime is exercised: small w → hash collisions inflate
frequency estimates → FTED derives a larger t → smaller actual blowup and
larger KLD.

Includes the conservative-update ablation called out in DESIGN.md §6:
CU sketches over-estimate less, so their small-w points sit closer to the
exact-counting end of the curve.
"""

from conftest import print_table

from repro.analysis.tradeoff import experiment_a2

_WIDTHS = (2**8, 2**10, 2**12, 2**14, 2**16)
_BS = (1.05, 1.1, 1.15, 1.2)


def test_a2_fsl(benchmark, fsl_dataset):
    rows = benchmark.pedantic(
        experiment_a2,
        args=(fsl_dataset,),
        kwargs={"widths": _WIDTHS, "bs": _BS},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Figure 3 (FSL-like): FTED vs CM-Sketch width",
        rows,
        columns=["b", "w", "kld", "blowup"],
    )
    for b in _BS:
        series = [r for r in rows if r["b"] == b]
        narrow = min(series, key=lambda r: r["w"])
        wide = max(series, key=lambda r: r["w"])
        # Smaller w → over-estimated frequencies → larger t → more KLD and
        # less blowup. At small b the two effects nearly cancel, so the
        # blowup direction gets a small noise tolerance; the KLD direction
        # is the robust signal.
        assert narrow["kld"] >= wide["kld"] - 1e-9
        assert narrow["blowup"] <= wide["blowup"] + 0.02


def test_a2_ms(benchmark, ms_dataset):
    rows = benchmark.pedantic(
        experiment_a2,
        args=(ms_dataset,),
        kwargs={"widths": _WIDTHS, "bs": _BS},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Figure 3 (MS-like): FTED vs CM-Sketch width",
        rows,
        columns=["b", "w", "kld", "blowup"],
    )


def test_a2_conservative_update_ablation(benchmark, fsl_dataset):
    def run():
        plain = experiment_a2(
            fsl_dataset, widths=(2**8, 2**16), bs=(1.2,), conservative=False
        )
        cu = experiment_a2(
            fsl_dataset, widths=(2**8, 2**16), bs=(1.2,), conservative=True
        )
        return plain, cu

    plain, cu = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in plain:
        row["update"] = "plain"
    for row in cu:
        row["update"] = "conservative"
    print_table(
        "Ablation: conservative vs plain sketch updates (b=1.2)",
        plain + cu,
        columns=["update", "w", "kld", "blowup"],
    )
    # At the narrow width, CU over-estimates less → allows more blowup
    # (closer to the target b) than the plain sketch.
    plain_narrow = next(r for r in plain if r["w"] == 2**8)
    cu_narrow = next(r for r in cu if r["w"] == 2**8)
    assert cu_narrow["blowup"] >= plain_narrow["blowup"] - 1e-9
