"""Experiment A.1 (Figure 2): the storage-confidentiality trade-off.

Regenerates all four panels: KLD and actual storage blowup for MLE, SKE,
MinHash, BTED(t=20,15,10,5), and FTED(b=1.05..1.2), on the FSL-like and
MS-like datasets, with 95% confidence intervals across snapshots. Also
prints the §3.6 sample-ratio analysis derived from the measured KLDs.

Paper shapes that must reproduce: MLE has blowup exactly 1 and the highest
KLD; SKE has KLD 0 and the highest blowup; every TED variant beats MinHash
on both axes; FTED's actual blowup tracks the configured b.
"""

from conftest import BENCH_SKETCH_WIDTH, print_table
from emit import emit

from repro.analysis.tradeoff import experiment_a1
from repro.core.kld import samples_for_success

_TS = (20, 15, 10, 5)
_BS = (1.05, 1.1, 1.15, 1.2)


def _run(dataset):
    return experiment_a1(
        dataset, ts=_TS, bs=_BS, sketch_width=BENCH_SKETCH_WIDTH
    )


def _report(rows, label):
    print_table(f"Figure 2 ({label}): KLD and actual storage blowup", rows)
    by_name = {r["scheme"]: r for r in rows}
    mle = by_name["MLE"]["kld"]
    fted = by_name["FTED(b=1.2)"]["kld"]
    if fted > 0:
        reduction = 100 * (1 - fted / mle)
        ratio = samples_for_success(0.9, fted) / samples_for_success(0.9, mle)
        print(
            f"§3.6 analysis: FTED(b=1.2) cuts MLE KLD by {reduction:.1f}% "
            f"(paper: 84.7% FSL / 76.8% MS); adversary needs {ratio:.1f}x "
            f"the samples (paper: ~6.6x)"
        )


def test_a1_fsl(benchmark, fsl_dataset):
    rows = benchmark.pedantic(_run, args=(fsl_dataset,), rounds=1, iterations=1)
    _report(rows, "FSL-like")
    emit("a1_fsl", rows)
    by_name = {r["scheme"]: r for r in rows}
    assert by_name["MLE"]["blowup"] == 1.0
    assert by_name["SKE"]["kld"] < 1e-9
    # MinHash is Pareto-dominated: every TED variant stores less, and the
    # b=1.2 FTED point also leaks less.
    for name, row in by_name.items():
        if name.startswith(("BTED", "FTED")):
            assert row["blowup"] < by_name["MinHash"]["blowup"]
    assert by_name["FTED(b=1.2)"]["kld"] < by_name["MinHash"]["kld"]


def test_a1_ms(benchmark, ms_dataset):
    rows = benchmark.pedantic(_run, args=(ms_dataset,), rounds=1, iterations=1)
    _report(rows, "MS-like")
    emit("a1_ms", rows)
    by_name = {r["scheme"]: r for r in rows}
    assert by_name["MLE"]["kld"] == max(r["kld"] for r in rows)
    assert by_name["SKE"]["blowup"] == max(r["blowup"] for r in rows)
