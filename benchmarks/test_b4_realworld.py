"""Experiment B.4 (Table 2): trace-replay microbenchmark with dedup + disk.

Replays the median-size snapshot of each dataset (content materialized from
fingerprints, §5.3.2) into an on-disk provider and reports the per-step
upload breakdown. Chunking is omitted (trace replay), and the write step
includes provider-side dedup and disk I/O, as in the paper's Table 2.

Shape targets: per-MB step times are higher for the MS-like snapshot
because its chunks are smaller (more chunks per MB — the effect §5.3.2
attributes to FSL's larger average chunk size), and TED key generation
remains a small share of the upload time.
"""

import tempfile

from conftest import print_table

from repro.analysis.perf import experiment_b4

_results = {}


def _median_snapshot(dataset):
    ordered = sorted(dataset.snapshots, key=lambda s: s.total_bytes)
    return ordered[len(ordered) // 2]


def _run(dataset):
    snapshot = _median_snapshot(dataset)
    return experiment_b4(
        snapshot,
        directory=tempfile.mkdtemp(prefix="repro-b4-"),
        batch_size=2000,
        container_bytes=1 << 20,
    ), snapshot


def _finish():
    steps = (
        "fingerprinting",
        "hashing",
        "key seeding",
        "key derivation",
        "encryption",
        "write",
    )
    rows = []
    for step in steps:
        row = {"step": step}
        for label, (breakdown, _) in _results.items():
            row[f"{label} (ms/MB)"] = breakdown.ms_per_mb().get(step, "-")
        rows.append(row)
    print_table(
        "Table 2: computational time per 1 MB of uploads (trace replay)",
        rows,
    )
    for label, (breakdown, snapshot) in _results.items():
        chunks_per_mb = len(snapshot) / (snapshot.total_bytes / (1 << 20))
        print(
            f"{label}: {len(snapshot)} chunks, "
            f"{chunks_per_mb:.0f} chunks/MB, TED keygen share = "
            f"{100 * breakdown.keygen_share:.2f}%"
        )


def test_b4_fsl(benchmark, fsl_dataset):
    breakdown, snapshot = benchmark.pedantic(
        _run, args=(fsl_dataset,), rounds=1, iterations=1
    )
    _results["FSL-like"] = (breakdown, snapshot)
    assert breakdown.keygen_share < 0.5


def test_b4_ms(benchmark, ms_dataset):
    breakdown, snapshot = benchmark.pedantic(
        _run, args=(ms_dataset,), rounds=1, iterations=1
    )
    _results["MS-like"] = (breakdown, snapshot)
    _finish()
    # MS chunks are smaller → more per-chunk work per MB. Compare the
    # per-MB cost of the per-chunk stages across datasets.
    fsl_breakdown, fsl_snapshot = _results["FSL-like"]
    fsl_per_chunk_ms = fsl_breakdown.ms_per_mb()["hashing"]
    ms_per_chunk_ms = breakdown.ms_per_mb()["hashing"]
    assert ms_per_chunk_ms > fsl_per_chunk_ms * 0.9
