"""Experiment B.2 (Figure 7): key-generation speed vs batch size.

Compares TEDStore's sketch-based key generation (client hashing + key
seeding + key derivation, over TCP) against the two blinded server-aided
MLE baselines: blind RSA (DupLESS) and blind BLS. The paper's shape: TED
is fastest by well over an order of magnitude (997 MB/s vs 32.5 vs 2.3 at
batch 48k), and TED's speed grows with the batch size (fewer optimization
solves and round trips) while the blind protocols are batch-insensitive.

Speeds are in MB/s of covered file data assuming the paper's 8 KB average
chunk size.
"""

import random

from conftest import print_table

from repro.analysis.perf import (
    keygen_speed_blind_bls,
    keygen_speed_blind_rsa,
    keygen_speed_ted,
)
from repro.crypto import rsa

_BATCHES = (250, 500, 1000, 2000, 4000)
_TED_CHUNKS = 4000
_RSA_CHUNKS = 60
_BLS_CHUNKS = 12


def test_b2_keygen_speed(benchmark):
    key = rsa.generate_keypair(bits=2048, rng=random.Random(7))

    def run():
        ted = {
            batch: keygen_speed_ted(
                _TED_CHUNKS, batch_size=batch, use_tcp=True
            )
            for batch in _BATCHES
        }
        blind_rsa = keygen_speed_blind_rsa(_RSA_CHUNKS, key=key)
        blind_bls = keygen_speed_blind_bls(_BLS_CHUNKS)
        return ted, blind_rsa, blind_bls

    ted, blind_rsa, blind_bls = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        {
            "batch_size": batch,
            "TEDStore (MB/s)": round(ted[batch], 1),
            "blind-RSA (MB/s)": round(blind_rsa, 2),
            "blind-BLS (MB/s)": round(blind_bls, 2),
        }
        for batch in _BATCHES
    ]
    print_table("Figure 7: key generation speed", rows)
    best_ted = max(ted.values())
    print(
        f"speedup at best batch: {best_ted / blind_rsa:.0f}x over blind-RSA, "
        f"{best_ted / blind_bls:.0f}x over blind-BLS "
        f"(paper: >=30x over blind-RSA)"
    )
    print(
        "note: the paper's blind-RSA vs blind-BLS gap (14x) reflects "
        "OpenSSL's optimized modexp; in pure Python both baselines reduce "
        "to bigint multiplication cost and land within ~20% of each other. "
        "The headline ordering — hash-based TED keygen is orders of "
        "magnitude faster than either blinded protocol — reproduces."
    )
    # Figure 7's headline: >=30x over both blinded protocols.
    assert best_ted > 30 * blind_rsa
    assert best_ted > 30 * blind_bls
    assert ted[_BATCHES[-1]] >= ted[_BATCHES[0]] * 0.8  # grows (or holds)
