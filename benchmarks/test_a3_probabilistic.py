"""Experiment A.3 (Figure 4): probabilistic vs deterministic key generation.

Panels (a)-(d): KLD and actual blowup of FTED under both key-generation
modes. Panel (e)/(f): the difference rate of ciphertexts across two
independent encryption runs, by top-% most frequent plaintext chunks —
probabilistic key generation makes frequent chunks map to different
ciphertexts run-to-run (deterministic key generation always yields 0%).
"""

from conftest import BENCH_SCALE, BENCH_SKETCH_WIDTH, print_table

from repro.analysis.tradeoff import (
    accumulated_difference_rates,
    experiment_a3,
)
from repro.traces.synthetic import SyntheticTraceGenerator, TraceConfig

_BS = (1.05, 1.1, 1.15, 1.2)
_PCTS = (20, 40, 60, 80, 100)


def _report(result, label):
    print_table(
        f"Figure 4(a-d) ({label}): probabilistic vs deterministic",
        result["comparison"],
    )
    rate_rows = [
        {
            "top_%": p,
            "probabilistic_diff_%": round(
                100 * result["difference_rates"][p], 2
            ),
            "deterministic_diff_%": 0.0,
        }
        for p in _PCTS
    ]
    print_table(f"Figure 4(e/f) ({label}): difference rates", rate_rows)


def test_a3_fsl(benchmark, fsl_dataset):
    result = benchmark.pedantic(
        experiment_a3,
        args=(fsl_dataset,),
        kwargs={"bs": _BS, "sketch_width": BENCH_SKETCH_WIDTH},
        rounds=1,
        iterations=1,
    )
    _report(result, "FSL-like")
    rates = result["difference_rates"]
    # Frequent chunks differ most across runs; the absolute level depends
    # on how much of the duplicate mass sits above t (distribution-shaped),
    # so we assert the monotone trend plus a meaningful floor.
    assert rates[20] >= rates[100]
    assert rates[20] > 0.02
    for row in result["comparison"]:
        assert row["blowup_probabilistic"] <= \
            row["blowup_deterministic"] + 0.02


def test_a3_accumulated_key_manager(benchmark):
    """The EXPERIMENTS.md A.3 deviation check: a long-lived key manager
    (frequencies accumulated over a backup series, as in a real deployment)
    pushes difference rates toward the paper's magnitudes."""
    config = TraceConfig(
        name="a3acc",
        files_per_snapshot=max(8, int(240 * BENCH_SCALE)),
        file_copy_prob=0.4,
        popular_pool_size=2000,
        popular_prob=0.25,
        zipf_s=1.6,
    )
    generator = SyntheticTraceGenerator(config, "u0", seed=3)
    series = [generator.snapshot(f"snap{i}") for i in range(6)]

    def run():
        accumulated = accumulated_difference_rates(
            series, b=1.05, sketch_width=BENCH_SKETCH_WIDTH,
            percentiles=_PCTS,
        )
        from repro.analysis.tradeoff import difference_rates, make_fted

        per_snapshot = difference_rates(
            lambda seed: make_fted(1.05, BENCH_SKETCH_WIDTH, seed=seed),
            series[-1],
            percentiles=_PCTS,
        )
        return accumulated, per_snapshot

    accumulated, per_snapshot = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "top_%": p,
            "per-snapshot_diff_%": round(100 * per_snapshot[p], 2),
            "accumulated_diff_%": round(100 * accumulated[p], 2),
        }
        for p in _PCTS
    ]
    print_table(
        "Figure 4(e/f) variant: long-lived key manager (6-snapshot series)",
        rows,
    )
    assert accumulated[20] > 2 * per_snapshot[20]
    assert accumulated[20] > 0.25


def test_a3_ms(benchmark, ms_dataset):
    result = benchmark.pedantic(
        experiment_a3,
        args=(ms_dataset,),
        kwargs={"bs": _BS, "sketch_width": BENCH_SKETCH_WIDTH},
        rounds=1,
        iterations=1,
    )
    _report(result, "MS-like")
    assert result["difference_rates"][20] > 0.02
    assert result["difference_rates"][20] >= result["difference_rates"][100]
