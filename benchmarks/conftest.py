"""Benchmark fixtures: paper-scale (laptop-scaled) synthetic datasets.

Benchmarks regenerate every table and figure of the paper's evaluation at a
scale a pure-Python implementation can run in minutes. `BENCH_SCALE` can be
raised via the REPRO_BENCH_SCALE environment variable for larger runs.
"""

from __future__ import annotations

import os

import pytest

from repro.traces.synthetic import generate_fsl_like, generate_ms_like

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: Sketch width used by trade-off benches; the paper's 2^21..2^25 sweep is
#: shifted down proportionally to the trace volume (DESIGN.md §4).
BENCH_SKETCH_WIDTH = 2**16


@pytest.fixture(scope="session")
def fsl_dataset():
    """FSL-like dataset: per-user snapshot series, varying sizes."""
    return generate_fsl_like(
        users=3, snapshots_per_user=2, scale=BENCH_SCALE, seed=2013
    )


@pytest.fixture(scope="session")
def ms_dataset():
    """MS-like dataset: per-machine snapshots of similar size."""
    return generate_ms_like(machines=6, scale=BENCH_SCALE, seed=2011)


def print_table(title: str, rows, columns=None) -> None:
    """Render experiment rows the way the paper prints its tables."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
