"""Experiment B.5 (Figure 9): upload/download speeds across a snapshot
series, with dedup, the LSM fingerprint index, and containers all on disk.

Uploads a multi-snapshot series (one user's backups in creation order) into
one shared provider, then downloads every snapshot. The paper's shapes:
upload speed stays roughly stable while the index grows (LevelDB/LSM
compaction overhead keeps it from improving despite rising dedup ratios),
and download speed *declines* for later snapshots because their chunks are
fragmented across containers written by earlier snapshots (more container
fetches per restored MB).

Also runs the DESIGN.md §6 ablation: the LSM index vs a single-table
configuration with compaction effectively disabled.
"""

import tempfile

from conftest import BENCH_SCALE, print_table

from repro.analysis.perf import experiment_b5
from repro.traces.synthetic import SyntheticTraceGenerator, TraceConfig


def _series(name, seed, snapshots=6):
    config = TraceConfig(
        name=name,
        files_per_snapshot=max(8, int(120 * BENCH_SCALE)),
        file_copy_prob=0.4,
        popular_pool_size=2000,
        popular_prob=0.25,
        zipf_s=1.6,
        modify_prob=0.25,
        growth_files=6,
    )
    generator = SyntheticTraceGenerator(config, "u0", seed)
    return [generator.snapshot(f"{name}/snap{i:02d}") for i in range(snapshots)]


def _report(points, label):
    rows = [
        {
            "snapshot": i + 1,
            "upload (MB/s)": round(p.upload_mb_s, 2),
            "download (MB/s)": round(p.download_mb_s, 2),
        }
        for i, p in enumerate(points)
    ]
    print_table(f"Figure 9 ({label}): upload/download speeds", rows)


def test_b5_fsl_series(benchmark):
    snapshots = _series("b5fsl", seed=21)
    points = benchmark.pedantic(
        experiment_b5,
        args=(snapshots,),
        kwargs={
            "directory": tempfile.mkdtemp(prefix="repro-b5-"),
            "batch_size": 2000,
            "container_bytes": 1 << 20,
        },
        rounds=1,
        iterations=1,
    )
    _report(points, "FSL-like series")
    assert all(p.upload_mb_s > 0 for p in points)
    # Restores of later snapshots must not be faster than the first restore
    # on average — fragmentation pulls the tail down (paper Figure 9).
    first = points[0].download_mb_s
    tail = sum(p.download_mb_s for p in points[-2:]) / 2
    assert tail <= first * 1.5  # noisy at this scale; no *improvement* trend


def test_b5_restore_ablation(benchmark):
    # DESIGN.md §6 / paper §5.3.2 future work: look-ahead container
    # scheduling on the restore path vs the prototype's naive per-chunk
    # reads through a small LRU cache.
    snapshots = _series("b5res", seed=23, snapshots=4)

    def run():
        naive = experiment_b5(
            snapshots,
            directory=tempfile.mkdtemp(prefix="repro-b5n-"),
            batch_size=2000,
            container_bytes=512 << 10,
        )
        lookahead = experiment_b5(
            snapshots,
            directory=tempfile.mkdtemp(prefix="repro-b5a-"),
            batch_size=2000,
            container_bytes=512 << 10,
            lookahead_window=2000,
        )
        return naive, lookahead

    naive, lookahead = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "snapshot": i + 1,
            "naive download (MB/s)": round(a.download_mb_s, 2),
            "look-ahead download (MB/s)": round(b.download_mb_s, 2),
        }
        for i, (a, b) in enumerate(zip(naive, lookahead))
    ]
    print_table("Ablation: look-ahead restore scheduling", rows)
    naive_tail = naive[-1].download_mb_s
    lookahead_tail = lookahead[-1].download_mb_s
    print(
        f"final-snapshot restore: naive {naive_tail:.2f} MB/s vs "
        f"look-ahead {lookahead_tail:.2f} MB/s"
    )
    # Look-ahead must not be slower on the most fragmented snapshot.
    assert lookahead_tail >= naive_tail * 0.8


def test_b5_index_ablation(benchmark):
    # DESIGN.md §6: LSM compaction cost vs an effectively compaction-free
    # configuration (huge memtable, never flushed mid-series).
    snapshots = _series("b5abl", seed=22, snapshots=4)

    def run():
        lsm = experiment_b5(
            snapshots,
            directory=tempfile.mkdtemp(prefix="repro-b5l-"),
            batch_size=2000,
            container_bytes=1 << 20,
            kvstore_options={"memtable_bytes": 1 << 13, "compaction_trigger": 2},
        )
        flat = experiment_b5(
            snapshots,
            directory=tempfile.mkdtemp(prefix="repro-b5f-"),
            batch_size=2000,
            container_bytes=1 << 20,
            kvstore_options={"memtable_bytes": 1 << 28},
        )
        return lsm, flat

    lsm, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "snapshot": i + 1,
            "LSM upload (MB/s)": round(a.upload_mb_s, 2),
            "no-compaction upload (MB/s)": round(b.upload_mb_s, 2),
        }
        for i, (a, b) in enumerate(zip(lsm, flat))
    ]
    print_table("Ablation: index compaction cost on upload speed", rows)
    lsm_mean = sum(p.upload_mb_s for p in lsm) / len(lsm)
    flat_mean = sum(p.upload_mb_s for p in flat) / len(flat)
    print(f"mean upload: LSM {lsm_mean:.2f} MB/s vs no-compaction {flat_mean:.2f} MB/s")
    assert lsm_mean > 0 and flat_mean > 0
