"""Experiment B.3 (Figure 8): multi-client aggregate upload/download speed.

1..N clients connect over TCP (loopback), each uploading a file of unique
data, then downloading it back; concurrent phases are barrier-synchronized
exactly as in §5.3.1. The paper's shape: aggregate upload speed grows with
the client count (server-side parallelism); download growth saturates or
dips earlier due to read contention.

Absolute MB/s is ~10^3x below the paper's 10 GbE testbed (pure Python);
the scaling trend is the reproduction target.
"""

from conftest import print_table

from repro.analysis.perf import experiment_b3

_CLIENTS = (1, 2, 4, 8)
_FILE_BYTES = 512 << 10


def test_b3_multi_client(benchmark):
    def run():
        return [
            experiment_b3(n, file_bytes=_FILE_BYTES, batch_size=1000)
            for n in _CLIENTS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "clients": r.clients,
            "aggregate upload (MB/s)": round(r.upload_mb_s, 2),
            "aggregate download (MB/s)": round(r.download_mb_s, 2),
        }
        for r in results
    ]
    print_table("Figure 8: multi-client performance", rows)
    # Aggregate upload throughput must not collapse as clients are added;
    # the multi-threaded provider should extract some parallelism.
    assert results[-1].upload_mb_s > results[0].upload_mb_s * 0.5
    assert all(r.upload_mb_s > 0 and r.download_mb_s > 0 for r in results)
