"""Experiment B.1 (Table 1): single-machine microbenchmark on unique data.

Uploads a file of globally unique chunks through the full client pipeline
(all entities in-process, provider in memory — the paper's no-disk-I/O
setup) and reports the per-step compute time per MB for the paper's Fast
(MD5 + AES-128) and Secure (SHA-256 + AES-256) profiles, plus our shactr
throughput profile.

The headline to reproduce: fingerprinting and encryption dominate; TED key
generation (hashing + key seeding + key derivation) is a small share —
"TED is not a performance bottleneck" (§5.3.1). Note the pure-Python AES
exaggerates the encryption share relative to OpenSSL; shactr is the
closer-to-paper ratio (DESIGN.md §4).
"""

import pytest

from conftest import print_table
from emit import emit

from repro.analysis.perf import UPLOAD_STEPS, experiment_b1

_SIZES = {"fast": 96 << 10, "secure": 96 << 10, "shactr": 1 << 20}

_results = {}


@pytest.mark.parametrize("profile", ["fast", "secure", "shactr"])
def test_b1_profile(benchmark, profile):
    breakdown = benchmark.pedantic(
        experiment_b1,
        kwargs={
            "file_bytes": _SIZES[profile],
            "profile_name": profile,
            "batch_size": 2000,
        },
        rounds=1,
        iterations=1,
    )
    _results[profile] = breakdown
    assert breakdown.keygen_share < 0.5
    if len(_results) == 3:
        rows = []
        for step in UPLOAD_STEPS:
            row = {"step": step}
            for name, result in _results.items():
                row[f"{name} (ms/MB)"] = result.ms_per_mb().get(step, "-")
            rows.append(row)
        print_table("Table 1: computational time per 1 MB of uploads", rows)
        for name, result in _results.items():
            print(
                f"{name}: TED key generation share = "
                f"{100 * result.keygen_share:.2f}% "
                f"(paper: 7.2% fast / 6.1% secure)"
            )
        emit(
            "b1_microbench",
            {
                "table": rows,
                "throughput_mb_per_s": {
                    name: (
                        _SIZES[name]
                        / (1 << 20)
                        / total
                        if (total := sum(result.step_seconds.values())) > 0
                        else None
                    )
                    for name, result in _results.items()
                },
                "keygen_share": {
                    name: result.keygen_share
                    for name, result in _results.items()
                },
            },
        )
