"""Pipeline throughput: serial vs pipelined client upload (BENCH_pipeline).

Replays the A1 synthetic workload (FSL-like snapshot series) through two
in-process deployments — the serial baseline and the pipelined client
(4 encrypt workers + fingerprint cache, DESIGN.md §10) — and reports
upload throughput in MB/s. The pipelined path must never be slower than
serial; on this duplicate-heavy workload the fingerprint cache resolves
the bulk of repeat chunks client-side, which is where the speedup comes
from on a single-core runner (threads alone add no CPU parallelism under
the GIL).

Emits the ``pipeline`` section (CI routes it to ``BENCH_pipeline.json``)
with both throughputs, the speedup, and cache statistics, and fails if
pipelined throughput drops below serial — the CI regression gate.
"""

import random
import time

from conftest import print_table
from emit import emit

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import get_profile
from repro.storage.dedup import FingerprintCache
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.provider import ProviderService
from repro.traces.model import materialize_chunk

_W = 2**16
_BATCH = 4096


def _make_client(workers: int, cache_capacity: int) -> TedStoreClient:
    service = KeyManagerService(
        TedKeyManager(
            secret=b"pipeline-bench",
            blowup_factor=1.05,
            batch_size=_BATCH,
            sketch_width=_W,
            rng=random.Random(7),
        )
    )
    provider = ProviderService(in_memory=True)
    cache = (
        FingerprintCache(capacity=cache_capacity)
        if cache_capacity
        else None
    )
    return TedStoreClient(
        LocalKeyManager(service),
        LocalProvider(provider),
        profile=get_profile("shactr"),
        sketch_width=_W,
        batch_size=_BATCH,
        workers=workers,
        pipeline_depth=4,
        fingerprint_cache=cache,
    )


def _replay(client: TedStoreClient, dataset) -> dict:
    """Upload every snapshot; time only the upload calls."""
    upload_seconds = 0.0
    logical = 0
    chunk_count = 0
    stored = 0
    cache_hits = 0
    for snapshot in dataset.snapshots:
        # Materialize outside the timed region: chunk synthesis is test
        # scaffolding, not part of the client path being measured.
        chunks = [
            materialize_chunk(fp, size) for fp, size in snapshot.records
        ]
        started = time.perf_counter()
        result = client.upload_chunks(snapshot.snapshot_id, chunks)
        upload_seconds += time.perf_counter() - started
        logical += result.logical_bytes
        chunk_count += result.chunk_count
        stored += result.stored_chunks
        cache_hits += result.cache_hits
    mb = logical / (1 << 20)
    return {
        "upload_seconds": round(upload_seconds, 3),
        "logical_mb": round(mb, 1),
        "chunks": chunk_count,
        "stored_chunks": stored,
        "cache_hits": cache_hits,
        "mb_per_s": round(mb / upload_seconds, 2) if upload_seconds else 0.0,
    }


def test_pipeline_vs_serial_throughput(fsl_dataset):
    serial_client = _make_client(workers=1, cache_capacity=0)
    piped_client = _make_client(workers=4, cache_capacity=1 << 16)
    serial = _replay(serial_client, fsl_dataset)
    piped = _replay(piped_client, fsl_dataset)

    rows = [
        {"path": "serial", **serial},
        {"path": "pipelined (4 workers + fp-cache)", **piped},
    ]
    speedup = (
        piped["mb_per_s"] / serial["mb_per_s"] if serial["mb_per_s"] else 0.0
    )
    print_table("Pipeline upload throughput (A1 FSL-like workload)", rows)
    print(f"pipelined speedup: {speedup:.2f}x (target: >= 1.5x with cache)")
    emit(
        "pipeline",
        {
            "serial": serial,
            "pipelined": piped,
            "speedup": round(speedup, 3),
            "workers": 4,
            "cache": piped_client.fingerprint_cache.stats(),
        },
    )

    # Equivalence spot-check: both paths must agree on what was stored.
    assert piped["chunks"] == serial["chunks"]
    assert piped["stored_chunks"] == serial["stored_chunks"]
    assert piped["logical_mb"] == serial["logical_mb"]
    # The duplicate-heavy workload must actually exercise the cache.
    assert piped["cache_hits"] > 0
    # Regression gate: the pipelined path may never be slower than serial.
    assert piped["mb_per_s"] >= serial["mb_per_s"], (
        f"pipelined path regressed below serial: "
        f"{piped['mb_per_s']} < {serial['mb_per_s']} MB/s"
    )
