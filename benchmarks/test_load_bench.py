"""Load-harness regression gate: smoke profile throughput + tail latency.

Runs the examples/load_smoke.toml profile (scaled by REPRO_BENCH_SCALE,
same convention as every other bench) against a fresh in-process
deployment, prints the per-op table, and writes ``BENCH_load.json``
(repo root; ``REPRO_BENCH_LOAD_OUT`` overrides) for the CI artifact.

The gate asserts the floors/ceilings in-test so CI fails on regression:

* no operation errors (faults are off in the smoke profile);
* total throughput at least ``_MIN_OPS_PER_SECOND`` — a deliberately
  loose floor (~10x below the ~300 ops/s a cold CI runner delivers at
  smoke scale) that still catches order-of-magnitude collapses;
* upload p99 under ``_MAX_UPLOAD_P99_MS`` — likewise ~10x headroom over
  the observed ~25ms;
* the profile's own (generous) SLOs judged by the tracker.
"""

from pathlib import Path

from conftest import BENCH_SCALE, print_table

from repro.loadgen.report import LoadReport, write_bench
from repro.loadgen.runner import LoadRunner
from repro.loadgen.workload import WorkloadProfile

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
_PROFILE = _EXAMPLES / "load_smoke.toml"
_PROFILE_3SHARD = _EXAMPLES / "load_smoke_3shard.toml"
_MIN_OPS_PER_SECOND = 20.0
_MAX_UPLOAD_P99_MS = 500.0


def test_load_smoke_gate():
    _run_gate(_PROFILE)


def test_load_smoke_3shard_gate():
    # Same workload, 3-shard deployment, same throughput floor: ring
    # routing must not cost an order of magnitude (DESIGN.md §15).
    _run_gate(_PROFILE_3SHARD)


def _run_gate(profile_path: Path) -> None:
    profile = WorkloadProfile.from_toml(profile_path).scaled(BENCH_SCALE)
    runner = LoadRunner(profile)
    totals = runner.run()
    report = LoadReport.collect(profile, totals, runner.tracker)

    print_table(
        f"{profile.name} (scale {BENCH_SCALE}, {profile.clients} clients, "
        f"{profile.duration_seconds:.1f}s)",
        [
            {
                "op": r.op,
                "ops": r.ops,
                "err%": f"{r.error_ratio:.1%}",
                "p50ms": f"{r.p50_ms:.1f}",
                "p99ms": f"{r.p99_ms:.1f}",
                "ops/s": f"{r.ops_per_second:.1f}",
                "MiB/s": f"{r.mib_per_second:.2f}",
            }
            for r in report.per_op
        ],
    )
    out = write_bench([report])
    print(f"wrote {out}")

    assert totals.ops > 0, "load run produced no operations"
    assert report.errors_total == 0, (
        f"{report.errors_total} errors with faults off"
    )
    total_rate = sum(r.ops_per_second for r in report.per_op)
    assert total_rate >= _MIN_OPS_PER_SECOND, (
        f"throughput collapsed: {total_rate:.1f} ops/s "
        f"< {_MIN_OPS_PER_SECOND} floor"
    )
    uploads = [r for r in report.per_op if r.op == "upload"]
    assert uploads, "smoke profile uploaded nothing"
    assert uploads[0].p99_ms <= _MAX_UPLOAD_P99_MS, (
        f"upload p99 regressed: {uploads[0].p99_ms:.1f}ms "
        f"> {_MAX_UPLOAD_P99_MS}ms ceiling"
    )
    assert not report.breached, "smoke profile breached its own SLOs"
