"""Restore throughput: serial vs pipelined download (BENCH_restore).

The B.5 companion bench: uploads the A1 synthetic workload (FSL-like
snapshot series) once into an on-disk provider serving reads with
look-ahead container scheduling, then restores every snapshot twice —
through the serial download loop and through the pipelined read path
(4 decrypt workers, DESIGN.md §11) — and reports download throughput in
MB/s. On this duplicate-heavy workload the pipelined path's restore
alias suppression fetches and decrypts each unique (ciphertext, key)
pair once, which is where the speedup comes from on a single-core
runner (threads alone add no CPU parallelism under the GIL).

Emits the ``restore`` section (CI routes it to ``BENCH_restore.json``)
with both throughputs, the speedup, and the provider-side
fragmentation/container-cache statistics, and fails if pipelined
throughput drops below serial — the CI regression gate. Restored bytes
are verified identical across the two paths for every snapshot.
"""

import hashlib
import random
import time

from conftest import print_table
from emit import emit

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import get_profile
from repro.storage.restore import FragmentationAnalyzer
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.provider import ProviderService
from repro.traces.model import materialize_chunk

_W = 2**16
_BATCH = 4096
_LOOKAHEAD = 256


def _make_clients(directory):
    """One serial and one pipelined client over shared services."""
    service = KeyManagerService(
        TedKeyManager(
            secret=b"restore-bench",
            blowup_factor=1.05,
            batch_size=_BATCH,
            sketch_width=_W,
            rng=random.Random(7),
        )
    )
    provider = ProviderService(
        directory=str(directory),
        container_bytes=1 << 20,  # small containers → real fragmentation
        lookahead_window=_LOOKAHEAD,
    )
    km_transport = LocalKeyManager(service)
    provider_transport = LocalProvider(provider)

    def client(workers: int) -> TedStoreClient:
        return TedStoreClient(
            km_transport,
            provider_transport,
            profile=get_profile("shactr"),
            sketch_width=_W,
            batch_size=_BATCH,
            workers=workers,
            pipeline_depth=4,
        )

    return client(1), client(4), provider


def _download_all(client: TedStoreClient, names) -> dict:
    """Download every snapshot; time only the download calls."""
    download_seconds = 0.0
    logical = 0
    digests = {}
    for name in names:
        started = time.perf_counter()
        data = client.download(name)
        download_seconds += time.perf_counter() - started
        logical += len(data)
        digests[name] = hashlib.sha256(data).hexdigest()
    mb = logical / (1 << 20)
    return {
        "download_seconds": round(download_seconds, 3),
        "logical_mb": round(mb, 1),
        "mb_per_s": (
            round(mb / download_seconds, 2) if download_seconds else 0.0
        ),
        "digests": digests,
    }


def test_restore_pipelined_vs_serial_throughput(fsl_dataset, tmp_path):
    serial_client, piped_client, provider = _make_clients(tmp_path)
    names = []
    for snapshot in fsl_dataset.snapshots:
        chunks = [
            materialize_chunk(fp, size) for fp, size in snapshot.records
        ]
        serial_client.upload_chunks(snapshot.snapshot_id, chunks)
        names.append(snapshot.snapshot_id)
    provider.flush()

    # Fragmentation of the final (most-aged) snapshot — the Figure 9
    # driver this bench exists to keep visible.
    last = fsl_dataset.snapshots[-1]
    engine = provider.engine
    algorithm = serial_client.profile.hash_algorithm
    file_recipe, _ = serial_client._fetch_recipes(last.snapshot_id)
    locations = [
        engine.locate(fp) for fp, _ in file_recipe.entries
    ]
    fragmentation = FragmentationAnalyzer.analyze(locations)

    # Serial first: it warms the provider's container cache, which only
    # stabilizes the gate in the pipelined run's favor being honest —
    # the pipelined path then wins on client-side work skipped, not on
    # a cold-vs-warm cache artifact.
    serial = _download_all(serial_client, names)
    piped = _download_all(piped_client, names)

    # Byte-identity spot check across the two paths, every snapshot.
    assert piped.pop("digests") == serial.pop("digests")

    restorer_stats = {}
    restorer = engine._restorers.get(_LOOKAHEAD)
    if restorer is not None:
        restorer_stats = dict(restorer.stats)

    rows = [
        {"path": "serial", **serial},
        {"path": "pipelined (4 decrypt workers)", **piped},
    ]
    speedup = (
        piped["mb_per_s"] / serial["mb_per_s"]
        if serial["mb_per_s"]
        else 0.0
    )
    print_table(
        "Restore download throughput (A1 FSL-like workload)", rows
    )
    print(
        f"pipelined restore speedup: {speedup:.2f}x; "
        f"fragmentation factor (last snapshot): "
        f"{fragmentation.fragmentation_factor:.3f}"
    )
    emit(
        "restore",
        {
            "serial": serial,
            "pipelined": piped,
            "speedup": round(speedup, 3),
            "workers": 4,
            "lookahead_window": _LOOKAHEAD,
            "fragmentation": {
                "chunks": fragmentation.chunks,
                "containers_touched": fragmentation.containers_touched,
                "container_switches": fragmentation.container_switches,
                "chunks_per_container": round(
                    fragmentation.chunks_per_container, 2
                ),
                "fragmentation_factor": round(
                    fragmentation.fragmentation_factor, 4
                ),
            },
            "provider_restorer": restorer_stats,
        },
    )

    assert serial["logical_mb"] == piped["logical_mb"]
    # The look-ahead path must actually be serving these restores.
    assert restorer_stats.get("window_count", 0) > 0
    # Regression gate: the pipelined path may never be slower than serial.
    assert piped["mb_per_s"] >= serial["mb_per_s"], (
        f"pipelined restore regressed below serial: "
        f"{piped['mb_per_s']} < {serial['mb_per_s']} MB/s"
    )
