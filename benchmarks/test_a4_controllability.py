"""Experiment A.4 (Figure 5): controllability of the storage blowup.

BTED with one fixed t produces widely varying actual blowups across
snapshots (frequency characteristics differ per snapshot); FTED with
b = 1.05 pins the actual blowup near b everywhere by re-deriving t per
snapshot. The bench prints the per-snapshot series sorted ascending, as the
paper plots them.
"""

from conftest import BENCH_SKETCH_WIDTH, print_table

from repro.analysis.tradeoff import experiment_a4


def _spread(series):
    return max(series) - min(series)


def _report(result, label):
    rows = [
        {
            "snapshot_rank": i + 1,
            "bted_t5_blowup": round(b, 4),
            "fted_b1.05_blowup": round(f, 4),
            "bted_t5_kld": round(bk, 4),
            "fted_b1.05_kld": round(fk, 4),
        }
        for i, (b, f, bk, fk) in enumerate(
            zip(
                result["bted_blowup"],
                result["fted_blowup"],
                result["bted_kld"],
                result["fted_kld"],
            )
        )
    ]
    print_table(f"Figure 5 ({label}): per-snapshot series (sorted)", rows)
    print(
        f"blowup spread: BTED(t=5) {_spread(result['bted_blowup']):.4f} vs "
        f"FTED(b=1.05) {_spread(result['fted_blowup']):.4f}"
    )


def test_a4_fsl(benchmark, fsl_dataset):
    result = benchmark.pedantic(
        experiment_a4,
        args=(fsl_dataset,),
        kwargs={"t": 5, "b": 1.05, "sketch_width": BENCH_SKETCH_WIDTH},
        rounds=1,
        iterations=1,
    )
    _report(result, "FSL-like")
    # FTED pins the blowup near b with a tighter spread than BTED.
    assert _spread(result["fted_blowup"]) <= _spread(result["bted_blowup"])
    assert max(result["fted_blowup"]) <= 1.05 + 0.05


def test_a4_ms(benchmark, ms_dataset):
    result = benchmark.pedantic(
        experiment_a4,
        args=(ms_dataset,),
        kwargs={"t": 5, "b": 1.05, "sketch_width": BENCH_SKETCH_WIDTH},
        rounds=1,
        iterations=1,
    )
    _report(result, "MS-like")
    assert max(result["fted_blowup"]) <= 1.05 + 0.05
