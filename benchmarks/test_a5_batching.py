"""Experiment A.5 (Figure 6): impact of the key-generation batch size.

With batching, FTED initializes t = 1 and retunes per batch, so early
chunks are encrypted with maximal spreading — actual blowup comes out
slightly above the "Nil" (tune-once-from-exact-frequencies) arm, and grows
mildly with the batch size (larger batches delay the t increase). The
paper's 12k-96k batch range is scaled to the synthetic snapshot sizes.
"""

from conftest import BENCH_SKETCH_WIDTH, print_table

from repro.analysis.tradeoff import experiment_a5

_BS = (1.05, 1.1, 1.15, 1.2)
_BATCHES = (None, 500, 1000, 2000, 4000)


def test_a5_fsl(benchmark, fsl_dataset):
    rows = benchmark.pedantic(
        experiment_a5,
        args=(fsl_dataset,),
        kwargs={
            "bs": _BS,
            "batch_sizes": _BATCHES,
            "sketch_width": BENCH_SKETCH_WIDTH,
        },
        rounds=1,
        iterations=1,
    )
    print_table(
        "Figure 6 (FSL-like): batch-size impact (batch 0 = Nil)",
        rows,
        columns=["b", "batch_size", "kld", "blowup"],
    )
    for b in _BS:
        series = {r["batch_size"]: r for r in rows if r["b"] == b}
        nil = series[0]
        for batch_size in (500, 1000, 2000, 4000):
            # Batching costs at most a modest extra blowup over Nil.
            assert series[batch_size]["blowup"] >= nil["blowup"] - 0.03


def test_a5_ms(benchmark, ms_dataset):
    rows = benchmark.pedantic(
        experiment_a5,
        args=(ms_dataset,),
        kwargs={
            "bs": _BS,
            "batch_sizes": _BATCHES,
            "sketch_width": BENCH_SKETCH_WIDTH,
        },
        rounds=1,
        iterations=1,
    )
    print_table(
        "Figure 6 (MS-like): batch-size impact (batch 0 = Nil)",
        rows,
        columns=["b", "batch_size", "kld", "blowup"],
    )
